package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/engine"
	"robustmap/internal/spec"
)

// gateResolver resolves every plan to a synthetic source whose cells
// block on the gate registered under the plan's id (no gate = measure
// immediately) — per-job control the shared-release fakeResolver can't
// give scheduling tests.
type gateResolver struct {
	mu      sync.Mutex
	gates   map[string]chan struct{}
	started map[string]chan struct{}
}

func newGateResolver() *gateResolver {
	return &gateResolver{gates: map[string]chan struct{}{}, started: map[string]chan struct{}{}}
}

// gate registers plan id as gated and returns (started, release):
// started closes when the plan measures its first cell, release unblocks
// its cells.
func (r *gateResolver) gate(id string) (started chan struct{}, release chan struct{}) {
	started, release = make(chan struct{}), make(chan struct{})
	r.mu.Lock()
	r.gates[id], r.started[id] = release, started
	r.mu.Unlock()
	return started, release
}

func (r *gateResolver) Check(req Request) error { return req.Validate() }

func (r *gateResolver) Resolve(req Request) (*ResolvedSweep, error) {
	rows := req.Rows
	if rows == 0 {
		rows = 1 << 10
	}
	rs := &ResolvedSweep{}
	rs.Fractions, rs.Thresholds = core.SweepAxis(rows, req.MaxExp)
	for i, id := range req.Plans {
		id := id
		scale := time.Duration(i + 1)
		var once sync.Once
		rs.Sources = append(rs.Sources, core.PlanSource{
			ID: id,
			Measure: func(ta, tb int64) core.Measurement {
				r.mu.Lock()
				release, started := r.gates[id], r.started[id]
				r.mu.Unlock()
				if started != nil {
					once.Do(func() { close(started) })
				}
				if release != nil {
					<-release
				}
				t := time.Duration(ta+1) * scale * time.Microsecond
				if tb >= 0 {
					t += time.Duration(tb+1) * scale * time.Nanosecond
				}
				return core.Measurement{Time: t, Rows: ta + tb + 1}
			},
		})
		rs.Scopes = append(rs.Scopes, "gate")
	}
	return rs, nil
}

// TestTenantQuota pins multi-tenant admission: a tenant at its active
// quota is refused with ErrTenantQuota while another tenant's
// submission is admitted and runs — and a finished job frees the slot.
func TestTenantQuota(t *testing.T) {
	defer startLeakCheck(t)()
	ctx := context.Background()
	r := newGateResolver()
	started, release := r.gate("g1")
	l := NewLocal(LocalConfig{Workers: 2, Resolver: r, TenantQuota: 1})
	defer closeLocal(t, l)

	id1, err := l.Submit(ctx, Request{Plans: []string{"g1"}, MaxExp: 1, Tenant: "alice"})
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	<-started

	// Alice is at quota — queued or running both count as active.
	_, err = l.Submit(ctx, Request{Plans: []string{"p"}, MaxExp: 1, Tenant: "alice"})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("Submit over quota: %v, want ErrTenantQuota", err)
	}
	// Bob's quota is his own: admitted, runs to completion while alice's
	// job still occupies her slot.
	bobID, err := l.Submit(ctx, Request{Plans: []string{"p"}, MaxExp: 1, Tenant: "bob"})
	if err != nil {
		t.Fatalf("Submit bob: %v", err)
	}
	if _, err := Wait(ctx, l, bobID, nil); err != nil {
		t.Fatalf("Wait bob: %v", err)
	}

	// The slot frees when the job goes terminal.
	close(release)
	if _, err := Wait(ctx, l, id1, nil); err != nil {
		t.Fatalf("Wait alice: %v", err)
	}
	if _, err := l.Submit(ctx, Request{Plans: []string{"p"}, MaxExp: 1, Tenant: "alice"}); err != nil {
		t.Fatalf("Submit after slot freed: %v", err)
	}
}

// TestTenantQuotaCancelFrees: cancelling a queued job releases its
// tenant's quota slot without it ever running.
func TestTenantQuotaCancelFrees(t *testing.T) {
	defer startLeakCheck(t)()
	ctx := context.Background()
	r := newGateResolver()
	_, release := r.gate("g1")
	l := NewLocal(LocalConfig{Workers: 1, Resolver: r, TenantQuota: 2})
	defer closeLocal(t, l)
	// LIFO: the gate must open before closeLocal waits the job out.
	defer close(release)

	if _, err := l.Submit(ctx, Request{Plans: []string{"g1"}, MaxExp: 1, Tenant: "alice"}); err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	queued, err := l.Submit(ctx, Request{Plans: []string{"p"}, MaxExp: 1, Tenant: "alice"})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if _, err := l.Submit(ctx, Request{Plans: []string{"p"}, MaxExp: 1, Tenant: "alice"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("Submit at quota: %v, want ErrTenantQuota", err)
	}
	if err := l.Cancel(ctx, queued); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if _, err := l.Submit(ctx, Request{Plans: []string{"p"}, MaxExp: 1, Tenant: "alice"}); err != nil {
		t.Fatalf("Submit after cancel: %v, want admission", err)
	}
}

// TestFairTenantPick pins the weighted pick: at equal priority, the
// scheduler prefers the tenant with the fewest running jobs, even when
// the busier tenant's job was submitted first. (Single-tenant loads
// degrade to plain FIFO — the tie-breaker below — which
// TestLocalPriorityAdmission continues to pin.)
func TestFairTenantPick(t *testing.T) {
	defer startLeakCheck(t)()
	ctx := context.Background()
	r := newGateResolver()
	s1, rel1 := r.gate("g1")
	s2, rel2 := r.gate("g2")
	s4, rel4 := r.gate("g4")
	l := NewLocal(LocalConfig{Workers: 2, Resolver: r})
	defer closeLocal(t, l)

	// Saturate both workers with alice.
	a1, err := l.Submit(ctx, Request{Plans: []string{"g1"}, MaxExp: 1, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	<-s1
	a2, err := l.Submit(ctx, Request{Plans: []string{"g2"}, MaxExp: 1, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	<-s2

	// Queue alice's third before bob's first.
	a3, err := l.Submit(ctx, Request{Plans: []string{"g3"}, MaxExp: 1, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	b4, err := l.Submit(ctx, Request{Plans: []string{"g4"}, MaxExp: 1, Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}

	// Free one worker: with alice still running a job, the freed worker
	// must pick bob despite alice's earlier submission.
	close(rel1)
	if _, err := Wait(ctx, l, a1, nil); err != nil {
		t.Fatalf("Wait a1: %v", err)
	}
	<-s4
	st, err := l.Status(ctx, b4)
	if err != nil || st.State != JobRunning {
		t.Fatalf("bob's job state = %v (%v), want running before alice's third", st.State, err)
	}
	if st, err := l.Status(ctx, a3); err != nil || st.State != JobQueued {
		t.Fatalf("alice's third job state = %v (%v), want still queued", st.State, err)
	}

	close(rel2)
	close(rel4)
	for _, id := range []JobID{a2, a3, b4} {
		if _, err := Wait(ctx, l, id, nil); err != nil {
			t.Fatalf("Wait %s: %v", id, err)
		}
	}
}

// specMap is a SpecSource over a plain map.
type specMap map[string]*spec.WorkloadSpec

func (m specMap) WorkloadByHash(hash string) (*spec.WorkloadSpec, bool) {
	ws, ok := m[hash]
	return ws, ok
}

// TestWorkloadRefSubstitution pins submit-by-reference: an unknown hash
// is refused with ErrSpecNotFound (as is any ref on a service without a
// spec source), a known hash runs exactly like the inlined spec —
// including the archive treating both as the same study.
func TestWorkloadRefSubstitution(t *testing.T) {
	ctx := context.Background()
	ws, err := spec.LoadFile("../../examples/workloads/skewed.json")
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	req := Request{WorkloadRef: ws.Hash(), Rows: 1 << 10, MaxExp: 2}

	// No spec source wired at all.
	bare := NewLocal(LocalConfig{Workers: 1})
	defer closeLocal(t, bare)
	if _, err := bare.Submit(ctx, req); !errors.Is(err, ErrSpecNotFound) {
		t.Fatalf("Submit ref without a spec source: %v, want ErrSpecNotFound", err)
	}

	specs := specMap{}
	l := NewLocal(LocalConfig{Workers: 1, Specs: specs})
	defer closeLocal(t, l)
	if _, err := l.Submit(ctx, req); !errors.Is(err, ErrSpecNotFound) {
		t.Fatalf("Submit unknown ref: %v, want ErrSpecNotFound", err)
	}

	// Publish, then the same ref request runs — byte-for-byte the run
	// the inlined spec produces.
	specs[ws.Hash()] = ws
	got, err := Run(ctx, l, req, nil)
	if err != nil {
		t.Fatalf("Run by ref: %v", err)
	}
	want, err := Run(ctx, l, Request{Workload: ws, Rows: 1 << 10, MaxExp: 2}, nil)
	if err != nil {
		t.Fatalf("Run inline: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("ref-submitted result differs from the inline submission")
	}
}

// TestShardValidationAfterSubstitution: a shard bound that only becomes
// checkable once the ref resolves to a spec (the axis depth lives in
// the spec) is still rejected at Submit, not at run time.
func TestShardValidationAfterSubstitution(t *testing.T) {
	ctx := context.Background()
	ws, err := spec.LoadFile("../../examples/workloads/skewed.json")
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	l := NewLocal(LocalConfig{Workers: 1, Specs: specMap{ws.Hash(): ws}})
	defer closeLocal(t, l)

	_, err = l.Submit(ctx, Request{
		WorkloadRef: ws.Hash(),
		Rows:        1 << 10,
		MaxExp:      2, // 3-point axis
		Shard:       &Shard{Lo: 0, Hi: 9},
	})
	if !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("Submit out-of-axis shard by ref: %v, want ErrInvalidRequest", err)
	}
}

// TestShardRunsSliceOfAxis pins the worker half of the shard contract:
// a shard request yields exactly the [Lo, Hi) slice of the unsharded
// map — full axis derived first, then sliced, so cells carry identical
// thresholds, fractions, and times.
func TestShardRunsSliceOfAxis(t *testing.T) {
	ctx := context.Background()
	r := newGateResolver() // nothing gated: synthetic cells, no engine
	l := NewLocal(LocalConfig{Workers: 1, Resolver: r})
	defer closeLocal(t, l)

	base := Request{Plans: []string{"p1", "p2"}, MaxExp: 4, Grid2D: true}
	whole, err := Run(ctx, l, base, nil)
	if err != nil {
		t.Fatalf("Run whole: %v", err)
	}
	shardReq := base
	shardReq.Shard = &Shard{Lo: 1, Hi: 4}
	part, err := Run(ctx, l, shardReq, nil)
	if err != nil {
		t.Fatalf("Run shard: %v", err)
	}

	w, p := whole.Map2D, part.Map2D
	if w == nil || p == nil {
		t.Fatal("missing 2-D maps")
	}
	if !reflect.DeepEqual(p.TA, w.TA[1:4]) || !reflect.DeepEqual(p.FracA, w.FracA[1:4]) {
		t.Errorf("shard A axis = (%v, %v), want slice (%v, %v)", p.TA, p.FracA, w.TA[1:4], w.FracA[1:4])
	}
	if !reflect.DeepEqual(p.TB, w.TB) || !reflect.DeepEqual(p.FracB, w.FracB) {
		t.Error("shard B axis differs from the whole map's (it is never sharded)")
	}
	if !reflect.DeepEqual(p.Rows, w.Rows[1:4]) {
		t.Error("shard row grid differs from the whole map's slice")
	}
	for pi := range w.Plans {
		if !reflect.DeepEqual(p.Times[pi], w.Times[pi][1:4]) {
			t.Errorf("plan %s shard times differ from the whole map's slice", w.Plans[pi])
		}
	}

	// 1-D: same contract on the single axis.
	base1 := Request{Plans: []string{"p1"}, MaxExp: 4}
	whole1, err := Run(ctx, l, base1, nil)
	if err != nil {
		t.Fatalf("Run whole 1-D: %v", err)
	}
	shard1 := base1
	shard1.Shard = &Shard{Lo: 2, Hi: 5}
	part1, err := Run(ctx, l, shard1, nil)
	if err != nil {
		t.Fatalf("Run shard 1-D: %v", err)
	}
	if !reflect.DeepEqual(part1.Map1D.Thresholds, whole1.Map1D.Thresholds[2:5]) ||
		!reflect.DeepEqual(part1.Map1D.Times[0], whole1.Map1D.Times[0][2:5]) {
		t.Error("1-D shard differs from the whole axis slice")
	}
}

// TestShardRejections: structurally bad shards fail Validate, and a
// shard past the resolved axis fails at Submit via Check.
func TestShardRejections(t *testing.T) {
	ctx := context.Background()
	r := newGateResolver()
	l := NewLocal(LocalConfig{Workers: 1, Resolver: r})
	defer closeLocal(t, l)

	cases := []Request{
		{Plans: []string{"p"}, MaxExp: 4, Shard: &Shard{Lo: -1, Hi: 2}},
		{Plans: []string{"p"}, MaxExp: 4, Shard: &Shard{Lo: 2, Hi: 2}},
		{Plans: []string{"p"}, MaxExp: 4, Shard: &Shard{Lo: 0, Hi: 6}},
		{Plans: []string{"p"}, MaxExp: 4, Refine: true, Shard: &Shard{Lo: 0, Hi: 2}},
	}
	for i, req := range cases {
		if _, err := l.Submit(ctx, req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("case %d: Submit = %v, want ErrInvalidRequest", i, err)
		}
	}
}

// TestSynthesizeQueryMatchesResolver pins the lowering the coordinator
// relies on: running a query's synthesized workload and applying the
// finish overlay reproduces, bit for bit, what the resolver's own query
// path produces — candidates, picks, regret map, and the measured grid.
func TestSynthesizeQueryMatchesResolver(t *testing.T) {
	ctx := context.Background()
	qs, err := spec.LoadQueryFile("../../examples/workloads/skewed_query.json")
	if err != nil {
		t.Fatalf("LoadQueryFile: %v", err)
	}
	req := Request{Query: qs, Rows: 1 << 10, MaxExp: 2}

	l := NewLocal(LocalConfig{Workers: 1, CacheSize: -1})
	defer closeLocal(t, l)
	want, err := Run(ctx, l, req, nil)
	if err != nil {
		t.Fatalf("resolver query Run: %v", err)
	}

	lowered, finish, err := SynthesizeQuery(req, engine.DefaultConfig().Rows)
	if err != nil {
		t.Fatalf("SynthesizeQuery: %v", err)
	}
	if lowered.Query != nil || lowered.Workload == nil {
		t.Fatalf("lowered request still carries a query, or no workload")
	}
	got, err := Run(ctx, l, lowered, nil)
	if err != nil {
		t.Fatalf("lowered Run: %v", err)
	}
	if err := finish(got); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("synthesized query run differs from the resolver's query path")
	}

	// Non-query requests don't lower.
	if _, _, err := SynthesizeQuery(Request{Plans: []string{"A1"}, MaxExp: 2}, 0); err == nil {
		t.Error("SynthesizeQuery on a non-query request: no error, want one")
	}
}
