package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/engine"
	"robustmap/internal/mapstore"
	"robustmap/internal/spec"
)

// LocalConfig parameterizes the in-process scheduler.
type LocalConfig struct {
	// Workers bounds how many jobs run concurrently: n > 0 that many,
	// 0 one, -1 all CPUs. (Each job may additionally fan its cells out
	// per its Request.Parallelism.)
	Workers int
	// QueueLimit bounds the admission queue (queued, not yet running);
	// Submit fails with ErrQueueFull beyond it. 0 means unbounded.
	QueueLimit int
	// TTL retains terminal jobs (status and result) for this long
	// before garbage collection; 0 retains them forever.
	TTL time.Duration
	// CacheSize enables the shared measurement cache reused across all
	// jobs, keyed by (system, plan, point): positive bounds the entry
	// count with LRU eviction, -1 means unbounded, 0 disables.
	CacheSize int
	// Engine overrides the base engine configuration of the default
	// resolver (nil means engine.DefaultConfig()). Ignored when
	// Resolver is set.
	Engine *engine.Config
	// Resolver overrides how Requests become measurable sweeps; nil
	// means NewEngineResolver over the Engine configuration.
	Resolver Resolver
	// Store persists measurements and finished maps across process
	// lifetimes. Jobs consult its map archive before resolving (an
	// identical earlier request is served from disk without building a
	// system), its measurement log backs the cache as a second tier, and
	// its contents warm the cache when the service starts. The caller
	// owns the store's lifecycle (open it before NewLocal, close it
	// after Close). Nil runs without persistence.
	Store *mapstore.Store
	// Runner overrides how admitted jobs execute; nil means the default
	// in-process sweep runner over Resolver. The fabric coordinator
	// substitutes a runner that dispatches shards to worker daemons
	// while reusing this scheduler's queue, quotas, and watch fan-out.
	Runner Runner
	// Specs resolves Request.WorkloadRef content hashes to workload
	// specs at Submit. Nil rejects every spec-by-reference submission
	// with ErrSpecNotFound (the signal a fabric coordinator uses to
	// ship the spec and resubmit).
	Specs SpecSource
	// TenantQuota bounds each tenant's active jobs (queued + running);
	// Submit fails with ErrTenantQuota beyond it. The empty tenant is a
	// tenant like any other. 0 means no per-tenant bound.
	TenantQuota int

	// gcInterval overrides the janitor period (tests); 0 derives it
	// from TTL.
	gcInterval time.Duration
}

// Local is the in-process Service: a bounded worker pool over a
// FIFO-within-priority admission queue, per-job contexts, TTL-based job
// GC, and one measurement cache shared by every job. Create it with
// NewLocal and release it with Close.
type Local struct {
	resolver Resolver
	runner   Runner
	specs    SpecSource
	cache    *core.MeasureCache
	store    *mapstore.Store
	ttl      time.Duration
	qlimit   int
	quota    int

	mu       sync.Mutex
	cond     *sync.Cond // signals workers: queue non-empty or stopping
	jobs     map[JobID]*job
	queue    []*job // admission order; popNextLocked picks fairly
	seq      int64
	draining bool // Submit refused
	stopping bool // workers exit once the queue is empty

	// active counts queued+running jobs per tenant (quota admission);
	// running counts only running ones (weighted fair pick). Both
	// guarded by mu; entries are deleted at zero so the maps stay
	// bounded by the live tenant set.
	active  map[string]int
	running map[string]int

	wg       sync.WaitGroup // workers + janitor
	stopGC   chan struct{}
	gcPeriod time.Duration
}

// job is one submitted job's record. All mutable fields are guarded by
// Local.mu.
type job struct {
	id  JobID
	seq int64 // admission order; FIFO tiebreak within a priority
	req Request

	state     JobState
	progress  core.Progress
	err       error
	result    *Result
	submitted time.Time
	started   time.Time
	finished  time.Time

	// cancel aborts the job's run context; requested remembers an
	// explicit Cancel so the runner can tell cancellation from an
	// internal failure.
	cancel    context.CancelFunc
	ctx       context.Context
	requested bool

	watchers []chan Event
	done     chan struct{} // closed on the terminal transition
}

// popNextLocked picks and removes the next job to run: highest
// priority first, then — the weighted fair pick — the tenant with the
// fewest running jobs, then admission order. With a single tenant the
// middle key is constant, so the pre-fabric FIFO-within-priority order
// is preserved exactly; with several, a tenant that has flooded the
// queue still only ever gets its fair share of workers, because every
// pop prefers whoever is running least. The queue stays a plain slice
// scanned linearly: admission queues are short (bounded by QueueLimit)
// and the fair-pick key depends on mutable running counts, which a
// heap cannot index.
func (l *Local) popNextLocked() *job {
	best := -1
	for i, j := range l.queue {
		if best < 0 {
			best = i
			continue
		}
		b := l.queue[best]
		switch {
		case j.req.Priority != b.req.Priority:
			if j.req.Priority > b.req.Priority {
				best = i
			}
		case l.running[j.req.Tenant] != l.running[b.req.Tenant]:
			if l.running[j.req.Tenant] < l.running[b.req.Tenant] {
				best = i
			}
		case j.seq < b.seq:
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	j := l.queue[best]
	l.queue = append(l.queue[:best], l.queue[best+1:]...)
	return j
}

// removeQueuedLocked splices a still-queued job out of the admission
// queue (cancellation path); a job not present is a no-op.
func (l *Local) removeQueuedLocked(j *job) {
	for i, q := range l.queue {
		if q == j {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return
		}
	}
}

// NewLocal starts an in-process service: its workers are running and
// ready for Submit when NewLocal returns. Release it with Close.
func NewLocal(cfg LocalConfig) *Local {
	workers := cfg.Workers
	switch {
	case workers < 0:
		workers = runtime.NumCPU()
	case workers == 0:
		workers = 1
	}
	resolver := cfg.Resolver
	if resolver == nil {
		base := engine.DefaultConfig()
		if cfg.Engine != nil {
			base = *cfg.Engine
		}
		resolver = NewEngineResolver(base)
	}
	l := &Local{
		resolver: resolver,
		specs:    cfg.Specs,
		store:    cfg.Store,
		ttl:      cfg.TTL,
		qlimit:   cfg.QueueLimit,
		quota:    cfg.TenantQuota,
		jobs:     make(map[JobID]*job),
		active:   make(map[string]int),
		running:  make(map[string]int),
		stopGC:   make(chan struct{}),
	}
	l.runner = cfg.Runner
	if l.runner == nil {
		l.runner = &sweepRunner{resolver: resolver, local: l}
	}
	if cfg.CacheSize != 0 {
		// NewMeasureCache treats negative capacities as unbounded.
		l.cache = core.NewMeasureCache(cfg.CacheSize)
		// A restarted process starts with the LRU it shut down with.
		l.store.Warm(l.cache)
	}
	l.cond = sync.NewCond(&l.mu)
	l.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go l.worker()
	}
	if cfg.TTL > 0 {
		l.gcPeriod = cfg.gcInterval
		if l.gcPeriod <= 0 {
			l.gcPeriod = cfg.TTL / 4
			if l.gcPeriod < time.Second {
				l.gcPeriod = time.Second
			}
			if l.gcPeriod > time.Minute {
				l.gcPeriod = time.Minute
			}
		}
		l.wg.Add(1)
		go l.janitor()
	}
	return l
}

// CacheStats reports the shared measurement cache's counters; the zero
// value when no cache is configured.
func (l *Local) CacheStats() core.CacheStats {
	if l.cache == nil {
		return core.CacheStats{}
	}
	return l.cache.Stats()
}

// ServiceStats implements StatsSource: the cache counters, the store's
// (when one is configured), and a job census by state.
func (l *Local) ServiceStats(_ context.Context) (Stats, error) {
	st := Stats{Cache: l.CacheStats()}
	if l.store != nil {
		ss := l.store.Stats()
		st.Store = &ss
	}
	l.mu.Lock()
	st.Jobs = make(map[string]int)
	for _, j := range l.jobs {
		st.Jobs[string(j.state)]++
	}
	l.mu.Unlock()
	return st, nil
}

// Submit implements Service.
func (l *Local) Submit(_ context.Context, req Request) (JobID, error) {
	// A spec-by-reference request substitutes its workload before any
	// further checking: a miss is the fabric's fetch-on-miss signal
	// (the coordinator ships the spec and resubmits), and a hit makes
	// the request indistinguishable from one that carried the spec
	// inline — same validation, same archive key.
	if req.WorkloadRef != "" {
		var (
			ws *spec.WorkloadSpec
			ok bool
		)
		if l.specs != nil {
			ws, ok = l.specs.WorkloadByHash(req.WorkloadRef)
		}
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrSpecNotFound, req.WorkloadRef)
		}
		req.Workload, req.WorkloadRef = ws, ""
	}
	if err := l.runner.Check(req); err != nil {
		return "", err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.draining {
		return "", ErrDraining
	}
	if l.qlimit > 0 && len(l.queue) >= l.qlimit {
		return "", ErrQueueFull
	}
	if l.quota > 0 && l.active[req.Tenant] >= l.quota {
		return "", fmt.Errorf("%w: tenant %q has %d active jobs (quota %d)",
			ErrTenantQuota, req.Tenant, l.active[req.Tenant], l.quota)
	}
	l.seq++
	j := &job{
		id:        JobID(fmt.Sprintf("job-%06d", l.seq)),
		seq:       l.seq,
		req:       req,
		state:     JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	// The job's context is rooted in Background, not the Submit ctx:
	// the job outlives the submission call by design.
	j.ctx, j.cancel = context.WithCancel(context.Background())
	l.jobs[j.id] = j
	l.queue = append(l.queue, j)
	l.active[req.Tenant]++
	l.cond.Signal()
	return j.id, nil
}

// lookupLocked fetches a job under l.mu.
func (l *Local) lookupLocked(id JobID) (*job, error) {
	j, ok := l.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Status implements Service.
func (l *Local) Status(_ context.Context, id JobID) (JobStatus, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	j, err := l.lookupLocked(id)
	if err != nil {
		return JobStatus{}, err
	}
	return j.statusLocked(), nil
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Request:     j.req,
		Progress:    j.progress,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result implements Service.
func (l *Local) Result(_ context.Context, id JobID) (*Result, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	j, err := l.lookupLocked(id)
	if err != nil {
		return nil, err
	}
	switch j.state {
	case JobSucceeded:
		return j.result, nil
	case JobCancelled:
		return nil, fmt.Errorf("%w: %q", ErrJobCancelled, id)
	case JobFailed:
		return nil, fmt.Errorf("%w: %q: %s", ErrJobFailed, id, j.err)
	default:
		return nil, fmt.Errorf("%w: %q is %s", ErrJobNotDone, id, j.state)
	}
}

// Cancel implements Service.
func (l *Local) Cancel(_ context.Context, id JobID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	j, err := l.lookupLocked(id)
	if err != nil {
		return err
	}
	return l.cancelLocked(j)
}

func (l *Local) cancelLocked(j *job) error {
	switch j.state {
	case JobQueued:
		// Still in the admission queue: go terminal directly.
		l.removeQueuedLocked(j)
		j.cancel()
		l.finishLocked(j, JobCancelled, nil, nil)
	case JobRunning:
		// The runner observes the context at the next cell boundary and
		// finishes the job as cancelled.
		j.requested = true
		j.cancel()
	}
	// Cancelling a terminal job is an idempotent no-op.
	return nil
}

// Watch implements Service.
func (l *Local) Watch(ctx context.Context, id JobID) (<-chan Event, error) {
	l.mu.Lock()
	j, err := l.lookupLocked(id)
	if err != nil {
		l.mu.Unlock()
		return nil, err
	}
	// Generous buffer: progress ticks are throttled, and a watcher that
	// still falls behind loses ticks, never the terminal event (which
	// is the last send before close).
	ch := make(chan Event, 64)
	if j.state.Terminal() {
		ch <- j.eventLocked()
		close(ch)
		l.mu.Unlock()
		return ch, nil
	}
	j.watchers = append(j.watchers, ch)
	done := j.done
	l.mu.Unlock()

	go func() {
		select {
		case <-ctx.Done():
			// Detach: remove the watcher if the job hasn't closed it.
			l.mu.Lock()
			for i, w := range j.watchers {
				if w == ch {
					j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
					close(ch)
					break
				}
			}
			l.mu.Unlock()
		case <-done:
			// The terminal transition closed every watcher channel.
		}
	}()
	return ch, nil
}

func (j *job) eventLocked() Event {
	ev := Event{State: j.state, Progress: j.progress}
	if j.err != nil {
		ev.Error = j.err.Error()
	}
	return ev
}

// publishLocked fans the job's current event out to its watchers;
// non-blocking, so a stalled watcher drops ticks instead of stalling a
// sweep worker.
func (l *Local) publishLocked(j *job) {
	ev := j.eventLocked()
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finishLocked performs the terminal transition: state, result, stamps,
// the terminal event (guaranteed delivered, per the Watch contract:
// slow watchers lose ticks, never the terminal event), and the done
// broadcast.
func (l *Local) finishLocked(j *job, state JobState, res *Result, err error) {
	// Release the tenant's admission and fair-pick counts; delete at
	// zero so the maps track only live tenants.
	if j.state == JobRunning {
		if l.running[j.req.Tenant]--; l.running[j.req.Tenant] <= 0 {
			delete(l.running, j.req.Tenant)
		}
	}
	if l.active[j.req.Tenant]--; l.active[j.req.Tenant] <= 0 {
		delete(l.active, j.req.Tenant)
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	ev := j.eventLocked()
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
			// The buffer is full of stale progress ticks. Publishers
			// all hold l.mu, so we are the only sender: freeing one
			// slot (or finding a receiver beat us to it) guarantees the
			// terminal send cannot block.
			select {
			case <-ch:
			default:
			}
			ch <- ev
		}
		close(ch)
	}
	j.watchers = nil
	close(j.done)
}

// worker runs jobs popped from the admission queue until Close drains
// the service.
func (l *Local) worker() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.stopping {
			l.cond.Wait()
		}
		if len(l.queue) == 0 {
			l.mu.Unlock()
			return
		}
		j := l.popNextLocked()
		j.state = JobRunning
		j.started = time.Now()
		l.running[j.req.Tenant]++
		l.publishLocked(j)
		l.mu.Unlock()
		l.runJob(j)
	}
}

// runJob resolves and runs one job on the calling worker goroutine.
func (l *Local) runJob(j *job) {
	res, err := l.execute(j)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case err == nil:
		l.finishLocked(j, JobSucceeded, res, nil)
	case errors.Is(err, context.Canceled) && (j.requested || j.ctx.Err() != nil):
		l.finishLocked(j, JobCancelled, nil, nil)
	default:
		l.finishLocked(j, JobFailed, nil, err)
	}
}

// execute runs one job through the configured Runner, bracketed by the
// map archive: a hit is served from disk, a fresh result is archived.
func (l *Local) execute(j *job) (res *Result, err error) {
	// A broken plan's row-count cross-check panics in the sweep core;
	// a job server must outlive it, so it lands as a failed job.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	// The map archive comes first — before the runner builds (possibly
	// gigabyte-scale) systems or dials a worker fleet: an identical
	// earlier request is served from disk, byte-identical by
	// measurement determinism, with zero new measurements.
	key := ArchiveKey(j.req)
	if l.store != nil && key != "" {
		if payload, ok := l.store.GetMap(key); ok {
			res = &Result{}
			if err := json.Unmarshal(payload, res); err == nil {
				return res, nil
			}
			// An unmarshalable payload despite an intact envelope means a
			// format drift; drop the hit and rebuild.
			res = nil
		}
	}
	res, err = l.runner.Run(j.ctx, j.req, func(p core.Progress) {
		l.mu.Lock()
		j.progress = p
		l.publishLocked(j)
		l.mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	if l.store != nil && key != "" {
		if payload, merr := json.Marshal(res); merr == nil {
			l.store.PutMap(key, archiveScope(j.req), payload)
		}
	}
	return res, nil
}

// janitor garbage-collects terminal jobs past their TTL.
func (l *Local) janitor() {
	defer l.wg.Done()
	t := time.NewTicker(l.gcPeriod)
	defer t.Stop()
	for {
		select {
		case <-l.stopGC:
			return
		case <-t.C:
			l.gc()
		}
	}
}

// gc drops terminal jobs whose TTL elapsed. A GC'd job id answers
// ErrUnknownJob from then on.
func (l *Local) gc() {
	if l.ttl <= 0 {
		return
	}
	cutoff := time.Now().Add(-l.ttl)
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, j := range l.jobs {
		if j.state.Terminal() && j.finished.Before(cutoff) {
			delete(l.jobs, id)
		}
	}
}

// Drain refuses new submissions (Submit returns ErrDraining) while
// letting admitted jobs proceed. It is the first half of Close, exposed
// so a server can drain before its listener stops.
func (l *Local) Drain() {
	l.mu.Lock()
	l.draining = true
	l.mu.Unlock()
}

// Close shuts the service down gracefully: no new submissions, admitted
// jobs run to completion, then the workers and janitor exit. If ctx
// expires first, every remaining job is cancelled (queued ones go
// terminal as cancelled, running ones stop at the next cell boundary)
// and Close waits for the workers to finish the cancelled remains. The
// returned error is ctx's error when the forced path was taken. Close
// is idempotent and safe to call concurrently; every call waits for
// the shutdown to complete.
func (l *Local) Close(ctx context.Context) error {
	l.mu.Lock()
	l.draining = true
	if !l.stopping {
		l.stopping = true
		close(l.stopGC)
	}
	l.cond.Broadcast()
	l.mu.Unlock()

	done := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Forced drain: cancel everything still live and wait it out.
	l.mu.Lock()
	for _, j := range l.jobs {
		if !j.state.Terminal() {
			_ = l.cancelLocked(j)
		}
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	<-done
	return ctx.Err()
}

var (
	_ Service     = (*Local)(nil)
	_ StatsSource = (*Local)(nil)
)
