package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"robustmap/internal/core"
	"robustmap/internal/mapstore"
)

// ArchiveKey is the content address of a request's finished map: the
// hash of the request with its execution-only knobs normalized away.
// Parallelism, Priority, and Tenant change how a job runs (or who it
// is billed to), never what it produces — measurements are
// deterministic — so requests differing only there share one archived
// result. Everything else (plans, workload/query spec, rows, axis,
// grid shape, shard range, refinement) is part of the address: change
// any of it and you have asked for a different map.
func ArchiveKey(req Request) string {
	req.Parallelism = 0
	req.Priority = 0
	req.Tenant = ""
	b, err := json.Marshal(req)
	if err != nil {
		// A Request is plain data; Marshal cannot fail on one. Return a
		// key no store will ever hold rather than panic in a job server.
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// archiveScope builds the human-readable scope recorded beside an
// archived map, mirroring the request the key hashes.
func archiveScope(req Request) mapstore.Scope {
	sc := mapstore.Scope{
		Rows:   req.EffectiveRows(0),
		MaxExp: req.EffectiveMaxExp(),
		Grid2D: req.EffectiveGrid2D(),
		Refine: req.Refine,
	}
	switch {
	case req.Workload != nil:
		sc.Kind = "workload"
		sc.SpecHash = req.Workload.Hash()
		sc.Plans = req.EffectivePlans()
	case req.Query != nil:
		sc.Kind = "query"
		sc.SpecHash = req.Query.Hash()
	default:
		sc.Kind = "plans"
		sc.Plans = req.EffectivePlans()
	}
	return sc
}

// Stats is a point-in-time snapshot of a service's internals: the
// shared measurement cache, the persistent store (nil when the service
// runs without one), and a job census by state.
type Stats struct {
	Cache core.CacheStats `json:"cache"`
	Store *mapstore.Stats `json:"store,omitempty"`
	Jobs  map[string]int  `json:"jobs,omitempty"`
}

// StatsSource is the optional introspection facet of a Service.
// Implementations that can report their internals (Local, and
// httpapi.Client against a daemon that serves /v1/stats) provide it;
// callers type-assert and fall back gracefully (ErrUnsupported when
// the facet is structurally absent).
type StatsSource interface {
	ServiceStats(ctx context.Context) (Stats, error)
}
