package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/engine"
	"robustmap/internal/plan"
)

// ResolvedSweep is a Request made measurable: the bound plan sources,
// their cache scopes, the axis, and the adaptive sweeper's result-size
// oracle.
type ResolvedSweep struct {
	// Sources are the measurable plans, in request order. They must be
	// safe for concurrent sweep workers.
	Sources []core.PlanSource
	// Scopes[i] names the system behind Sources[i] for measurement-cache
	// keys (one shared cache serves several systems without collisions).
	Scopes []string
	// Fractions and Thresholds are the request's selectivity axis (used
	// for both axes of a 2-D grid).
	Fractions  []float64
	Thresholds []int64
	// ResultSize, when non-nil, is the exact result-size oracle handed
	// to adaptive sweeps.
	ResultSize func(ta, tb int64) int64
}

// Resolver turns Requests into measurable sweeps. Check runs at Submit
// and must be cheap (plan-id validation); Resolve runs on a worker
// goroutine when the job starts and may build engine systems. Resolvers
// must be safe for concurrent use.
type Resolver interface {
	Check(req Request) error
	Resolve(req Request) (*ResolvedSweep, error)
}

// maxCachedSystems bounds the resolver's built-system cache: three
// systems at a few distinct row counts covers every workload the CLIs
// and studies generate, and eviction (least recently used) keeps a
// daemon fed adversarial per-request row counts at a bounded footprint.
// An evicted system is simply rebuilt on next use; jobs holding it keep
// measuring on their reference.
const maxCachedSystems = 9

// EngineResolver is the default Resolver: it resolves plan ids against
// the paper's plan catalog and measures them on the simulated systems
// A, B, and C, building each (system, rows) pair once and reusing it
// across jobs — systems are immutable after build and measure through
// their session pools, so any number of concurrent jobs can share one.
// Builds of distinct systems run concurrently; only same-key callers
// wait on each other.
type EngineResolver struct {
	base engine.Config

	mu      sync.Mutex
	systems map[sysKey]*sysEntry
}

type sysKey struct {
	name string
	rows int64
}

// sysEntry is one cached build: the once gates the expensive build so
// the resolver mutex is never held across it.
type sysEntry struct {
	once     sync.Once
	sys      *engine.System
	err      error
	lastUsed time.Time
}

// NewEngineResolver returns a resolver measuring on systems built from
// the given base configuration (rows are overridden per request).
func NewEngineResolver(base engine.Config) *EngineResolver {
	return &EngineResolver{base: base, systems: make(map[sysKey]*sysEntry)}
}

// catalog maps every known plan id to its plan; twoPred marks the plans
// of the two-predicate study (the only ones a 2-D grid accepts).
var catalog, twoPred = func() (map[string]plan.Plan, map[string]bool) {
	all := map[string]plan.Plan{}
	two := map[string]bool{}
	for _, p := range plan.AllPlans() {
		all[p.ID] = p
		two[p.ID] = true
	}
	for _, p := range plan.Figure2Plans() {
		if _, ok := all[p.ID]; !ok {
			all[p.ID] = p
		}
	}
	return all, two
}()

// KnownPlanIDs lists every plan id a Request may name, sorted.
func KnownPlanIDs() []string {
	out := make([]string, 0, len(catalog))
	for id := range catalog {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Check validates the request's plan ids against the catalog.
func (r *EngineResolver) Check(req Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	for _, id := range req.Plans {
		p, ok := catalog[id]
		if !ok {
			return fmt.Errorf("%w: unknown plan %q (known: %s)",
				ErrInvalidRequest, id, strings.Join(KnownPlanIDs(), ", "))
		}
		if req.Grid2D && !twoPred[p.ID] {
			return fmt.Errorf("%w: plan %q is a single-predicate Figure 1/2 extra; 2-D grids take the two-predicate study plans",
				ErrInvalidRequest, id)
		}
	}
	return nil
}

// system returns the built system for (name, rows), building it on
// first use. The mutex guards only the cache map; the build itself
// runs under the entry's once, so concurrent jobs needing different
// systems build in parallel and same-key callers share one build.
func (r *EngineResolver) system(name string, rows int64) (*engine.System, error) {
	k := sysKey{name: name, rows: rows}
	r.mu.Lock()
	e, ok := r.systems[k]
	if !ok {
		e = &sysEntry{}
		r.systems[k] = e
		r.evictLocked(k)
	}
	e.lastUsed = time.Now()
	r.mu.Unlock()

	e.once.Do(func() {
		cfg := r.base
		cfg.Rows = rows
		switch name {
		case "A":
			e.sys, e.err = engine.SystemA(cfg)
		case "B":
			e.sys, e.err = engine.SystemB(cfg)
		case "C":
			e.sys, e.err = engine.SystemC(cfg)
		default:
			e.err = fmt.Errorf("service: plan catalog names unknown system %q", name)
		}
	})
	return e.sys, e.err
}

// evictLocked drops the least-recently-used cached system beyond the
// capacity, never the entry just inserted.
func (r *EngineResolver) evictLocked(justAdded sysKey) {
	for len(r.systems) > maxCachedSystems {
		var (
			oldest   sysKey
			oldestAt time.Time
			found    bool
		)
		for k, e := range r.systems {
			if k == justAdded {
				continue
			}
			if !found || e.lastUsed.Before(oldestAt) {
				oldest, oldestAt, found = k, e.lastUsed, true
			}
		}
		if !found {
			return
		}
		delete(r.systems, oldest)
	}
}

// Resolve binds the request's plans to their systems. The first plan's
// system answers the result-size oracle (all systems share one
// dataset).
func (r *EngineResolver) Resolve(req Request) (*ResolvedSweep, error) {
	if err := r.Check(req); err != nil {
		return nil, err
	}
	rows := req.Rows
	if rows == 0 {
		rows = r.base.Rows
	}
	rs := &ResolvedSweep{}
	rs.Fractions, rs.Thresholds = core.SweepAxis(rows, req.MaxExp)
	var oracle *engine.System
	for _, id := range req.Plans {
		p := catalog[id]
		sys, err := r.system(p.System, rows)
		if err != nil {
			return nil, err
		}
		if oracle == nil {
			oracle = sys
		}
		pp := p
		rs.Sources = append(rs.Sources, core.PlanSource{
			ID: pp.ID,
			Measure: func(ta, tb int64) core.Measurement {
				res := sys.RunShared(pp, plan.Query{TA: ta, TB: tb})
				return core.Measurement{Time: res.Time, Rows: res.Rows}
			},
		})
		// The scope carries the row count, not just the system name: one
		// daemon cache serves jobs of different cardinalities, and the
		// same (plan, ta, tb) cell measures differently on a 2^14-row
		// table than on a 2^15-row one.
		rs.Scopes = append(rs.Scopes, fmt.Sprintf("%s/%d", sys.Name, rows))
	}
	if oracle != nil {
		sys := oracle
		rs.ResultSize = func(ta, tb int64) int64 {
			return sys.ResultSize(plan.Query{TA: ta, TB: tb})
		}
	}
	return rs, nil
}
