package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/engine"
	"robustmap/internal/optimizer"
	"robustmap/internal/plan"
	"robustmap/internal/spec"
)

// ResolvedSweep is a Request made measurable: the bound plan sources,
// their cache scopes, the axis, and the adaptive sweeper's result-size
// oracle.
type ResolvedSweep struct {
	// Sources are the measurable plans, in request order. They must be
	// safe for concurrent sweep workers.
	Sources []core.PlanSource
	// Scopes[i] names the system behind Sources[i] for measurement-cache
	// keys (one shared cache serves several systems without collisions).
	Scopes []string
	// Fractions and Thresholds are the request's selectivity axis (used
	// for both axes of a 2-D grid).
	Fractions  []float64
	Thresholds []int64
	// ResultSize, when non-nil, is the exact result-size oracle handed
	// to adaptive sweeps.
	ResultSize func(ta, tb int64) int64
	// Finish, when non-nil, post-processes the assembled Result before
	// the job succeeds — query requests use it to overlay the
	// optimizer's picks and the regret grids on the measured maps. It
	// is pure computation over the maps, so results stay deterministic
	// at any parallelism.
	Finish func(res *Result) error
}

// Resolver turns Requests into measurable sweeps. Check runs at Submit
// and must be cheap (plan-id validation); Resolve runs on a worker
// goroutine when the job starts and may build engine systems. Resolvers
// must be safe for concurrent use.
type Resolver interface {
	Check(req Request) error
	Resolve(req Request) (*ResolvedSweep, error)
}

// maxCachedSystems bounds the resolver's built-system cache: three
// systems at a few distinct row counts covers every workload the CLIs
// and studies generate, and eviction (least recently used) keeps a
// daemon fed adversarial per-request row counts at a bounded footprint.
// An evicted system is simply rebuilt on next use; jobs holding it keep
// measuring on their reference.
const maxCachedSystems = 9

// EngineResolver is the default Resolver: it resolves plan ids against
// the paper's plan catalog and measures them on the simulated systems
// A, B, and C, building each (system, rows) pair once and reusing it
// across jobs — systems are immutable after build and measure through
// their session pools, so any number of concurrent jobs can share one.
// Builds of distinct systems run concurrently; only same-key callers
// wait on each other.
type EngineResolver struct {
	base engine.Config

	// queries is the optimizer's plan cache: candidate lists memoized by
	// query structure hash, shared across jobs.
	queries *optimizer.Cache

	mu      sync.Mutex
	systems map[sysKey]*sysEntry
}

type sysKey struct {
	name string
	rows int64
}

// sysEntry is one cached build: the once gates the expensive build so
// the resolver mutex is never held across it.
type sysEntry struct {
	once     sync.Once
	sys      *engine.System
	err      error
	lastUsed time.Time
}

// NewEngineResolver returns a resolver measuring on systems built from
// the given base configuration (rows are overridden per request).
func NewEngineResolver(base engine.Config) *EngineResolver {
	return &EngineResolver{base: base, queries: optimizer.NewCache(),
		systems: make(map[sysKey]*sysEntry)}
}

// catalog maps every known plan id to its plan; twoPred marks the plans
// of the two-predicate study (the only ones a 2-D grid accepts).
var catalog, twoPred = func() (map[string]plan.Plan, map[string]bool) {
	all := map[string]plan.Plan{}
	two := map[string]bool{}
	for _, p := range plan.AllPlans() {
		all[p.ID] = p
		two[p.ID] = true
	}
	for _, p := range plan.Figure2Plans() {
		if _, ok := all[p.ID]; !ok {
			all[p.ID] = p
		}
	}
	return all, two
}()

// KnownPlanIDs lists every plan id a Request may name, sorted.
func KnownPlanIDs() []string {
	out := make([]string, 0, len(catalog))
	for id := range catalog {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PlanInfo describes one built-in plan — the discovery shape served by
// GET /v1/plans so clients can learn valid Request.Plans values.
type PlanInfo struct {
	ID          string `json:"id"`
	System      string `json:"system"`
	Description string `json:"description"`
}

// BuiltinPlans lists every plan a workload-less Request may name,
// sorted by id.
func BuiltinPlans() []PlanInfo {
	out := make([]PlanInfo, 0, len(catalog))
	for _, id := range KnownPlanIDs() {
		p := catalog[id]
		out = append(out, PlanInfo{ID: p.ID, System: p.System, Description: p.Description})
	}
	return out
}

// PlanShapeInfo describes one plan shape the optimizer can enumerate
// from a query request — the query API's counterpart of PlanInfo.
// Shape is the candidate-id pattern the shape produces.
type PlanShapeInfo struct {
	Shape       string `json:"shape"`
	Description string `json:"description"`
}

// QueryPlanShapes lists the optimizer's enumerable plan shapes, served
// by GET /v1/plans so HTTP clients can discover the query surface.
func QueryPlanShapes() []PlanShapeInfo {
	return []PlanShapeInfo{
		{Shape: "scan", Description: "full table scan, all predicates as residuals"},
		{Shape: "fetch-trad-<index>", Description: "single-column index range scan, traditional row-at-a-time fetch"},
		{Shape: "fetch-impr-<index>", Description: "single-column index range scan, improved (RID-sorted) fetch"},
		{Shape: "fetch-bitmap-<index>", Description: "single-column index range scan, bitmap fetch"},
		{Shape: "merge-<index>-<index>", Description: "RID merge intersection of two index range scans, improved fetch"},
		{Shape: "hash-<index>-<index>", Description: "RID hash intersection of two index range scans, improved fetch"},
		{Shape: "keyfilter-<index>", Description: "composite-index range scan with in-index entry predicates, bitmap fetch"},
		{Shape: "mdam-<index>", Description: "MDAM over a covering composite index, index-only"},
		{Shape: "cover-merge-<index>-<index>", Description: "covering RID join of two single-column indexes (merge), no base access"},
		{Shape: "cover-hash-<index>-<index>", Description: "covering RID join of two single-column indexes (hash), no base access"},
		{Shape: "hash-<t1>.<t2>[.<t3>...]", Description: "left-deep hash join in the named table order: each added table builds, the accumulated rows probe"},
		{Shape: "merge-<t1>.<t2>[.<t3>...]", Description: "left-deep sort-merge join in the named table order, both sides sorted on the step's equi-join keys"},
		{Shape: "inlj-<t1>.<t2>[.<t3>...]", Description: "left-deep index nested-loop join: each added table reached through a built single-column index on its join key"},
		{Shape: "<join shape>-ix", Description: "join variant driving the first table through an index on a bounded indexed predicate (improved fetch) instead of a full scan"},
		{Shape: "sort / limit / hash_agg wrappers", Description: "order_by adds a sort unless the candidate's natural order covers it; limit rides on top (TopN pushdown on ordered candidates); group_by/aggs add a hash aggregation"},
	}
}

// Check validates the request's plan ids — against the built-in catalog,
// or against its workload spec, whose plan trees are fully compiled
// (operator vocabulary, schema ordinals, index references) so a bad
// workload is rejected at Submit, not when the job starts.
func (r *EngineResolver) Check(req Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if req.Workload != nil {
		_, err := compileWorkloadRequest(req)
		return err
	}
	if req.Query != nil {
		_, _, err := r.planQuery(req.Query)
		return err
	}
	for _, id := range req.Plans {
		p, ok := catalog[id]
		if !ok {
			return fmt.Errorf("%w: unknown plan %q (known: %s)",
				ErrInvalidRequest, id, strings.Join(KnownPlanIDs(), ", "))
		}
		if req.Grid2D && !twoPred[p.ID] {
			return fmt.Errorf("%w: plan %q is a single-predicate Figure 1/2 extra; 2-D grids take the two-predicate study plans",
				ErrInvalidRequest, id)
		}
	}
	return nil
}

// compileWorkloadRequest compiles a workload-carrying request's spec
// and checks its plan references — shared by Check (Submit-time
// rejection) and Resolve (which keeps the compiled result, so a job
// compiles once when it runs).
func compileWorkloadRequest(req Request) (*plan.CompiledWorkload, error) {
	cw, err := plan.CompileWorkload(req.Workload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	for _, id := range req.EffectivePlans() {
		if _, ok := cw.Plan(id); !ok {
			return nil, fmt.Errorf("%w: workload %q has no plan %q (declared: %s)",
				ErrInvalidRequest, req.Workload.Name, id,
				strings.Join(req.Workload.PlanIDs(), ", "))
		}
		// A plan that needs the b threshold — flagged requires_tb, or
		// referencing param "tb" without an if_param/absent_all guard —
		// would panic or quietly measure empty ranges at 1-D points;
		// reject the mismatch at admission instead.
		if ps, _ := req.Workload.Plan(id); ps != nil && ps.NeedsTB() && !req.EffectiveGrid2D() {
			return nil, fmt.Errorf("%w: workload plan %q requires a two-predicate query; sweep it on a 2-D grid (grid_2d)",
				ErrInvalidRequest, id)
		}
	}
	return cw, nil
}

// planQuery runs the optimizer over a query request: enumerate the
// candidate plans (memoized by query structure), synthesize the
// one-system workload that measures them, and compile it through the
// same registry as hand-written specs — so a query whose enumerated
// trees cannot compile (schema mismatch against the generator, say) is
// rejected at Submit like any bad workload.
func (r *EngineResolver) planQuery(q *spec.QuerySpec) ([]optimizer.Candidate, *queryPlan, error) {
	cands, err := r.queries.Candidates(q)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	ws := optimizer.Workload(q, cands)
	cw, err := plan.CompileWorkload(ws)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	return cands, &queryPlan{ws: ws, cw: cw}, nil
}

// queryPlan is a query request's synthesized measurement workload.
type queryPlan struct {
	ws *spec.WorkloadSpec
	cw *plan.CompiledWorkload
}

// system returns the built system cached under key, building it with
// build on first use. The mutex guards only the cache map; the build
// itself runs under the entry's once, so concurrent jobs needing
// different systems build in parallel and same-key callers share one
// build.
func (r *EngineResolver) system(k sysKey, build func() (*engine.System, error)) (*engine.System, error) {
	r.mu.Lock()
	e, ok := r.systems[k]
	if !ok {
		e = &sysEntry{}
		r.systems[k] = e
		r.evictLocked(k)
	}
	e.lastUsed = time.Now()
	r.mu.Unlock()

	e.once.Do(func() { e.sys, e.err = build() })
	return e.sys, e.err
}

// builtinSystem builds one of the paper's systems A, B, or C at the
// given cardinality.
func (r *EngineResolver) builtinSystem(name string, rows int64) (*engine.System, error) {
	return r.system(sysKey{name: name, rows: rows}, func() (*engine.System, error) {
		cfg := r.base
		cfg.Rows = rows
		switch name {
		case "A":
			return engine.SystemA(cfg)
		case "B":
			return engine.SystemB(cfg)
		case "C":
			return engine.SystemC(cfg)
		default:
			return nil, fmt.Errorf("service: plan catalog names unknown system %q", name)
		}
	})
}

// workloadSystem builds one workload-spec system. The cache key carries
// the workload's content hash, so two workloads that happen to share a
// system name (or a workload shadowing the built-in "A") can never
// share a built dataset.
func (r *EngineResolver) workloadSystem(ws *spec.WorkloadSpec, hash string,
	sys *spec.SystemSpec, rows int64) (*engine.System, error) {

	return r.system(sysKey{name: "w/" + hash + "/" + sys.Name, rows: rows}, func() (*engine.System, error) {
		if ws.Catalog.Multi() {
			// Multi-table catalogs carry every cardinality themselves
			// (Request.Rows overrides are rejected at Validate); the build
			// maps the declared tables, FK edges, and the system's index
			// selection straight onto the engine's multi-table config.
			cfg := r.base
			cfg.Rows, cfg.TableName, cfg.Indexes, cfg.IndexDefs = 0, "", nil, nil
			cfg.Versioned = sys.Versioned
			for i := range ws.Catalog.Tables {
				t := &ws.Catalog.Tables[i]
				tc := engine.TableConfig{Name: t.Name, Rows: t.Rows, Seed: t.Seed,
					PayloadBytes: t.PayloadBytes, ZipfA: t.ZipfA, ZipfB: t.ZipfB}
				for _, fk := range t.ForeignKeys {
					tc.ForeignKeys = append(tc.ForeignKeys, engine.FKDef{
						Column: fk.Column, RefTable: fk.RefTable,
						Containment: fk.Containment, FanoutZipf: fk.FanoutZipf})
				}
				cfg.Tables = append(cfg.Tables, tc)
			}
			for _, name := range sys.Indexes {
				def := ws.Catalog.Index(name)
				cfg.IndexDefs = append(cfg.IndexDefs,
					engine.IndexDef{Name: def.Name, Table: def.Table, Columns: def.Columns})
			}
			return engine.BuildSystem(sys.Name, cfg)
		}
		t := ws.Catalog.Table()
		cfg := r.base
		cfg.Rows = rows
		cfg.Versioned = sys.Versioned
		cfg.TableName = t.Name
		cfg.ZipfA, cfg.ZipfB = t.ZipfA, t.ZipfB
		if t.Seed != 0 {
			cfg.Seed = t.Seed
		}
		if t.PayloadBytes != 0 {
			cfg.PayloadBytes = t.PayloadBytes
		}
		cfg.IndexDefs = nil
		for _, name := range sys.Indexes {
			def := ws.Catalog.Index(name)
			cfg.IndexDefs = append(cfg.IndexDefs,
				engine.IndexDef{Name: def.Name, Columns: def.Columns})
		}
		cfg.Indexes = nil
		return engine.BuildSystem(sys.Name, cfg)
	})
}

// evictLocked drops the least-recently-used cached system beyond the
// capacity, never the entry just inserted.
func (r *EngineResolver) evictLocked(justAdded sysKey) {
	for len(r.systems) > maxCachedSystems {
		var (
			oldest   sysKey
			oldestAt time.Time
			found    bool
		)
		for k, e := range r.systems {
			if k == justAdded {
				continue
			}
			if !found || e.lastUsed.Before(oldestAt) {
				oldest, oldestAt, found = k, e.lastUsed, true
			}
		}
		if !found {
			return
		}
		delete(r.systems, oldest)
	}
}

// Resolve binds the request's plans to their systems. The first plan's
// system answers the result-size oracle (all systems share one
// dataset).
func (r *EngineResolver) Resolve(req Request) (*ResolvedSweep, error) {
	// The workload branch validates through compileWorkloadRequest
	// directly (rather than via Check) so the compiled plans are kept —
	// a job's spec compiles once when it runs, not once to check and
	// again to bind.
	var (
		cw    *plan.CompiledWorkload
		cands []optimizer.Candidate
	)
	// A query request resolves exactly like a workload request over the
	// optimizer's synthesized workload, plus a Finish overlay below.
	ws, ids := req.Workload, req.EffectivePlans()
	switch {
	case req.Workload != nil:
		if err := req.Validate(); err != nil {
			return nil, err
		}
		var err error
		if cw, err = compileWorkloadRequest(req); err != nil {
			return nil, err
		}
	case req.Query != nil:
		if err := req.Validate(); err != nil {
			return nil, err
		}
		var (
			qp  *queryPlan
			err error
		)
		if cands, qp, err = r.planQuery(req.Query); err != nil {
			return nil, err
		}
		ws, cw = qp.ws, qp.cw
		ids = ws.SweepPlans()
	default:
		if err := r.Check(req); err != nil {
			return nil, err
		}
	}
	rows := req.EffectiveRows(r.base.Rows)
	rs := &ResolvedSweep{}
	rs.Fractions, rs.Thresholds = core.SweepAxis(rows, req.EffectiveMaxExp())

	// lookup maps a plan id to its Plan and built system; scope names
	// the (dataset, system, cardinality) behind it for measurement-cache
	// keys. Workload scopes carry the spec's content hash, so a custom
	// workload can never poison the built-in catalog's cache entries
	// (or another workload's).
	var lookup func(id string) (plan.Plan, *engine.System, string, error)
	if ws != nil {
		hash := ws.Hash()
		lookup = func(id string) (plan.Plan, *engine.System, string, error) {
			p, _ := cw.Plan(id)
			_, sysSpec := ws.Plan(id)
			sys, err := r.workloadSystem(ws, hash, sysSpec, rows)
			if err != nil {
				return plan.Plan{}, nil, "", err
			}
			return p, sys, fmt.Sprintf("w/%s/%s/%d", hash, sysSpec.Name, rows), nil
		}
	} else {
		lookup = func(id string) (plan.Plan, *engine.System, string, error) {
			p := catalog[id]
			sys, err := r.builtinSystem(p.System, rows)
			if err != nil {
				return plan.Plan{}, nil, "", err
			}
			// The scope carries the row count, not just the system name:
			// one daemon cache serves jobs of different cardinalities,
			// and the same (plan, ta, tb) cell measures differently on a
			// 2^14-row table than on a 2^15-row one.
			return p, sys, fmt.Sprintf("%s/%d", sys.Name, rows), nil
		}
	}

	var oracle *engine.System
	for _, id := range ids {
		pp, sys, scope, err := lookup(id)
		if err != nil {
			return nil, err
		}
		if oracle == nil {
			oracle = sys
		}
		rs.Sources = append(rs.Sources, core.PlanSource{
			ID: pp.ID,
			Measure: func(ta, tb int64) core.Measurement {
				res := sys.RunShared(pp, plan.Query{TA: ta, TB: tb})
				return core.Measurement{Time: res.Time, Rows: res.Rows}
			},
		})
		rs.Scopes = append(rs.Scopes, scope)
	}
	switch {
	case oracle != nil && !oracle.Multi():
		sys := oracle
		rs.ResultSize = func(ta, tb int64) int64 {
			return sys.ResultSize(plan.Query{TA: ta, TB: tb})
		}
	case oracle != nil && req.Query != nil && len(req.Query.Joins) > 0:
		// Multi-table systems cannot answer ResultSize from (a, b) pairs;
		// a join query's exact sizes come from the retained column data
		// instead. Multi-table workload requests get no oracle — their
		// plan trees, not the request, define the result semantics.
		rs.ResultSize = joinResultSize(oracle, req.Query)
	}
	if q := req.Query; q != nil {
		model := optimizer.NewModel(q, rows)
		rs.Finish = func(res *Result) error {
			for _, c := range cands {
				res.Candidates = append(res.Candidates, CandidateInfo{
					ID:          c.Plan.ID,
					Description: c.Plan.Description,
					RequiresTB:  c.Plan.RequiresTB || c.Plan.NeedsTB(),
				})
			}
			// Picks come from the estimated cost model alone (pure
			// computation), regret from the measured map — both
			// independent of how the sweep was parallelized.
			switch {
			case res.Map2D != nil:
				picks := model.Picks2D(cands, res.Map2D.TA, res.Map2D.TB)
				res.Regret2D = core.NewRegretMap2D(res.Map2D, picks, core.DefaultRegretThreshold)
			case res.Map1D != nil:
				picks := model.Picks1D(cands, res.Map1D.Thresholds)
				res.Regret1D = core.NewRegretMap1D(res.Map1D, picks, core.DefaultRegretThreshold)
			}
			return nil
		}
	}
	return rs, nil
}

// joinResultSize builds an exact result-size oracle for a join query
// from the multi-table system's retained column data: weights propagate
// bottom-up over the query's join tree (rooted at the driving table),
// so each root row's weight is the number of join-output rows it heads
// that satisfy every predicate. Exactly the inner-join semantics the
// compiled candidate plans execute, computed off the cost model's
// books — the counterpart of System.ResultSize for the single-table
// study.
func joinResultSize(sys *engine.System, q *spec.QuerySpec) func(ta, tb int64) int64 {
	edges := q.JoinEdges()
	predsOf := map[string][]spec.PredSpec{}
	for i := range q.Predicates {
		p := q.Predicates[i]
		if t := q.Catalog.ColumnTable(p.Column); t != nil {
			predsOf[t.Name] = append(predsOf[t.Name], p)
		}
	}
	return func(ta, tb int64) int64 {
		// weigh returns one weight per row of table: the matching joined
		// rows of the subtree reached without crossing back over `from`.
		var weigh func(table, from string) []int64
		weigh = func(table, from string) []int64 {
			rows := sys.TableRows(table)
			w := make([]int64, rows)
			for i := range w {
				w[i] = 1
			}
			for _, p := range predsOf[table] {
				lo, hi, active := predBounds(&p, ta, tb)
				if !active {
					continue
				}
				col := sys.ColumnData(table, p.Column)
				for i, v := range col {
					if v < lo || v >= hi {
						w[i] = 0
					}
				}
			}
			for _, e := range edges {
				switch {
				case e.Child == table && e.Parent != from:
					// This table holds the FK: each row keeps its single
					// parent match iff the value is contained.
					sub := weigh(e.Parent, table)
					fk := sys.ColumnData(table, e.FK)
					for i := range w {
						if w[i] == 0 {
							continue
						}
						if j := fk[i]; j >= 0 && j < int64(len(sub)) {
							w[i] *= sub[j]
						} else {
							w[i] = 0
						}
					}
				case e.Parent == table && e.Child != from:
					// The child holds the FK: fold its weights onto the
					// parent ids they reference (fanout).
					sub := weigh(e.Child, table)
					fk := sys.ColumnData(e.Child, e.FK)
					acc := make([]int64, rows)
					for i, j := range fk {
						if j >= 0 && j < rows {
							acc[j] += sub[i]
						}
					}
					for i := range w {
						w[i] *= acc[i]
					}
				}
			}
			return w
		}
		var n int64
		for _, x := range weigh(q.Table, "") {
			n += x
		}
		return n
	}
}

// predBounds resolves one predicate's half-open [lo, hi) interval at a
// query point; active is false when its guard drops it (tb absent).
func predBounds(p *spec.PredSpec, ta, tb int64) (lo, hi int64, active bool) {
	if p.IfParam == spec.ParamTB && tb < 0 {
		return 0, 0, false
	}
	val := func(v *spec.ValueSpec, dflt int64) int64 {
		switch {
		case v == nil:
			return dflt
		case v.Param == spec.ParamTA:
			return ta
		case v.Param == spec.ParamTB:
			return tb
		case v.Const != nil:
			return *v.Const
		}
		return dflt
	}
	const minI, maxI = int64(-1 << 63), int64(1<<63 - 1)
	return val(p.Lo, minI), val(p.Hi, maxI), true
}
