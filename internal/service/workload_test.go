package service

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"robustmap/internal/core"
	"robustmap/internal/engine"
	"robustmap/internal/plan"
	"robustmap/internal/spec"
)

// zipfWorkload returns a workload whose plan ids shadow the built-in
// catalog ("A1") but measure different data — the adversarial shape for
// cache scoping.
func zipfWorkload(rows int64) *spec.WorkloadSpec {
	return &spec.WorkloadSpec{
		Name: "zipf-shadow",
		Catalog: spec.CatalogSpec{
			Tables:  []spec.TableSpec{{Name: "lineitem", Rows: rows, ZipfA: 1.5}},
			Indexes: []spec.IndexSpec{{Name: "idx_a", Columns: []string{"a"}}},
		},
		Systems: []spec.SystemSpec{{
			Name:    "A",
			Indexes: []string{"idx_a"},
			Plans: []spec.PlanSpec{{
				ID:          "A1",
				Description: "table scan over zipf-skewed a",
				Root: &spec.PlanNode{Op: "table_scan", Table: "lineitem",
					Preds: []spec.PredSpec{
						{Column: "a", Hi: &spec.ValueSpec{Param: "ta"}},
						{Column: "b", Hi: &spec.ValueSpec{Param: "tb"}, IfParam: "tb"},
					}},
			}},
		}},
		Sweep: spec.SweepSpec{MaxExp: 2},
	}
}

// TestWorkloadSubmitValidation pins that a bad workload is rejected at
// Submit — spec structure, operator vocabulary, and plan references all
// map onto ErrInvalidRequest.
func TestWorkloadSubmitValidation(t *testing.T) {
	l := NewLocal(LocalConfig{Workers: 1})
	defer closeLocal(t, l)
	ctx := context.Background()

	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"structurally invalid spec", func(r *Request) { r.Workload.Systems = nil }},
		{"unknown op", func(r *Request) {
			r.Workload.Systems[0].Plans[0].Root.Op = "quantum_scan"
		}},
		{"plan id not in workload", func(r *Request) { r.Workload.Sweep.Plans = []string{"Z9"} }},
		{"plans alongside workload", func(r *Request) { r.Plans = []string{"A1"} }},
		{"requires_tb plan on a 1-D sweep", func(r *Request) {
			r.Workload.Systems[0].Plans[0].RequiresTB = true
		}},
		{"unguarded tb reference on a 1-D sweep", func(r *Request) {
			// Drop the if_param guard: the b predicate now references tb
			// unconditionally, which a tb=-1 sweep point cannot satisfy.
			r.Workload.Systems[0].Plans[0].Root.Preds[1].IfParam = ""
		}},
		{"workload rows beyond cap", func(r *Request) {
			r.Workload.Catalog.Tables[0].Rows = MaxRows + 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := Request{Workload: zipfWorkload(1 << 10)}
			tc.mutate(&req)
			if _, err := l.Submit(ctx, req); !errors.Is(err, ErrInvalidRequest) {
				t.Fatalf("Submit err = %v, want ErrInvalidRequest", err)
			}
		})
	}

	// And the request defaults resolve from the workload's sweep section.
	req := Request{Workload: zipfWorkload(1 << 10)}
	if got := req.EffectivePlans(); len(got) != 1 || got[0] != "A1" {
		t.Fatalf("EffectivePlans = %v, want [A1] from the workload", got)
	}
	if req.EffectiveMaxExp() != 2 {
		t.Fatalf("EffectiveMaxExp = %d, want 2 from the workload", req.EffectiveMaxExp())
	}
	if req.EffectiveRows(0) != 1<<10 {
		t.Fatalf("EffectiveRows = %d, want the workload's 1024", req.EffectiveRows(0))
	}
}

// TestWorkloadCacheScopesCarrySpecHash is the poisoning pin: a custom
// workload that reuses a built-in plan id and cardinality shares the
// daemon's measurement cache, and only the spec-hash scope keeps its
// cells apart from the built-in catalog's.
func TestWorkloadCacheScopesCarrySpecHash(t *testing.T) {
	const rows = 1 << 13
	l := NewLocal(LocalConfig{Workers: 1, CacheSize: -1})
	defer closeLocal(t, l)
	ctx := context.Background()

	builtin, err := Run(ctx, l, Request{Plans: []string{"A1"}, Rows: rows, MaxExp: 2}, nil)
	if err != nil {
		t.Fatalf("builtin job: %v", err)
	}
	custom, err := Run(ctx, l, Request{Workload: zipfWorkload(rows)}, nil)
	if err != nil {
		t.Fatalf("workload job: %v", err)
	}

	// Ground truth for the workload from a cache-free resolver.
	rs, err := NewEngineResolver(engine.DefaultConfig()).Resolve(Request{Workload: zipfWorkload(rows)})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.NewSweep(rs.Sources, core.Grid1D(rs.Fractions, rs.Thresholds)).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(custom.Map1D, truth.Map1D) {
		t.Fatalf("cache-shared workload map differs from ground truth:\n got %v\nwant %v",
			custom.Map1D.Times, truth.Map1D.Times)
	}
	// The zipf table really measures differently from the built-in one —
	// identical curves would mean the workload read the built-in scope.
	if reflect.DeepEqual(builtin.Map1D.Times, custom.Map1D.Times) {
		t.Fatal("built-in and zipf-workload curves are identical — spec-hash cache scoping failed")
	}
	// Two runs of the same workload share a scope (cache hits, same map).
	again, err := Run(ctx, l, Request{Workload: zipfWorkload(rows)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Map1D, custom.Map1D) {
		t.Fatal("repeated workload job produced a different map")
	}
	if st := l.CacheStats(); st.Hits == 0 {
		t.Errorf("repeated workload job hit the cache 0 times, want > 0")
	}
}

// TestPaperWorkloadMatchesBuiltinPath pins the resolver translation:
// the embedded paper workload, submitted as a custom workload, builds
// systems and plans that measure identically to the built-in catalog
// path (same engine, different construction route).
func TestPaperWorkloadMatchesBuiltinPath(t *testing.T) {
	const rows = 1 << 12
	l := NewLocal(LocalConfig{Workers: 1})
	defer closeLocal(t, l)
	ctx := context.Background()

	plans := []string{"A1", "A2", "B1", "C1"}
	builtin, err := Run(ctx, l, Request{Plans: plans, Rows: rows, MaxExp: 3, Grid2D: true}, nil)
	if err != nil {
		t.Fatalf("builtin job: %v", err)
	}
	// A request carries exactly one plan source, so the subset is
	// expressed in the workload's own sweep section.
	ws := plan.PaperWorkload()
	ws.Sweep.Plans = plans
	viaSpec, err := Run(ctx, l, Request{
		Workload: ws, Rows: rows, MaxExp: 3, Grid2D: true,
	}, nil)
	if err != nil {
		t.Fatalf("workload job: %v", err)
	}
	if !reflect.DeepEqual(builtin.Map2D, viaSpec.Map2D) {
		t.Fatal("paper workload submitted as a spec differs from the built-in catalog path")
	}
}
