package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestLocalStress hammers one Local with concurrent Submit / Cancel /
// Watch / Status from many goroutines — the satellite stress test run
// under -race in CI. It pins three invariants: every job reaches a
// terminal state, no job yields a partial result (succeeded jobs have
// maps, cancelled and failed jobs have none), and the service cleans up
// every goroutine it started.
func TestLocalStress(t *testing.T) {
	check := startLeakCheck(t)
	fr := newFakeResolver(50 * time.Microsecond)
	close(fr.release) // no gated plans in this test
	l := NewLocal(LocalConfig{Workers: 4, Resolver: fr,
		TTL: time.Hour /* janitor on, but nothing expires mid-test */})

	const (
		clients       = 8
		jobsPerClient = 12
	)
	var (
		mu  sync.Mutex
		ids []JobID
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			ctx := context.Background()
			for i := 0; i < jobsPerClient; i++ {
				req := Request{
					Plans:    []string{fmt.Sprintf("c%d-p1", c), fmt.Sprintf("c%d-p2", c)},
					MaxExp:   8 + rng.Intn(8),
					Grid2D:   rng.Intn(2) == 0,
					Priority: rng.Intn(3),
				}
				id, err := l.Submit(ctx, req)
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()

				switch rng.Intn(3) {
				case 0:
					// Watch to completion (or detach partway through).
					wctx, wcancel := context.WithCancel(ctx)
					ch, err := l.Watch(wctx, id)
					if err != nil {
						t.Errorf("Watch: %v", err)
						wcancel()
						return
					}
					if rng.Intn(2) == 0 {
						wcancel() // detach immediately
					}
					for range ch {
					}
					wcancel()
				case 1:
					// Cancel after a beat, racing the job's own progress.
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
					if err := l.Cancel(ctx, id); err != nil && !errors.Is(err, ErrUnknownJob) {
						t.Errorf("Cancel: %v", err)
						return
					}
				default:
					if _, err := l.Status(ctx, id); err != nil {
						t.Errorf("Status: %v", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// Everything admitted must reach a terminal state; graceful Close
	// waits for exactly that.
	closeLocal(t, l)

	ctx := context.Background()
	states := map[JobState]int{}
	for _, id := range ids {
		st, err := l.Status(ctx, id)
		if err != nil {
			t.Fatalf("Status(%s) after close: %v", id, err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s not terminal after close: %s", id, st.State)
		}
		states[st.State]++
		res, err := l.Result(ctx, id)
		switch st.State {
		case JobSucceeded:
			if err != nil || res == nil || (res.Map1D == nil && res.Map2D == nil) {
				t.Fatalf("succeeded job %s has no map (err=%v)", id, err)
			}
			if res.Map1D != nil && res.Map2D != nil {
				t.Fatalf("job %s has both 1-D and 2-D maps", id)
			}
		case JobCancelled:
			if !errors.Is(err, ErrJobCancelled) || res != nil {
				t.Fatalf("cancelled job %s: res=%v err=%v, want ErrJobCancelled and no partial result", id, res, err)
			}
		case JobFailed:
			t.Fatalf("job %s failed unexpectedly: %s", id, st.Error)
		}
	}
	if states[JobSucceeded] == 0 {
		t.Fatal("stress run completed no jobs")
	}
	t.Logf("stress: %d jobs (%d succeeded, %d cancelled)",
		len(ids), states[JobSucceeded], states[JobCancelled])
	check()
}
