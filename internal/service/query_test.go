package service

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"robustmap/internal/engine"
	"robustmap/internal/optimizer"
	"robustmap/internal/spec"
)

// smallPaperQuery is the embedded paper query at test scale.
func smallPaperQuery(maxExp int) *spec.QuerySpec {
	q := optimizer.PaperQuery()
	q.Sweep.MaxExp = maxExp
	return q
}

// TestRequestPlanSourceConflicts pins the exactly-one-of rule and its
// message: a request names its plans exactly one way.
func TestRequestPlanSourceConflicts(t *testing.T) {
	const wantMsg = "exactly one of plans, workload, or query must be set"
	q := smallPaperQuery(2)
	ws := zipfWorkload(1 << 10)
	cases := []struct {
		name string
		req  Request
	}{
		{"none", Request{MaxExp: 2}},
		{"plans+workload", Request{Plans: []string{"A1"}, Workload: ws, MaxExp: 2}},
		{"plans+query", Request{Plans: []string{"A1"}, Query: q}},
		{"workload+query", Request{Workload: ws, Query: q}},
		{"all three", Request{Plans: []string{"A1"}, Workload: ws, Query: q}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if !errors.Is(err, ErrInvalidRequest) {
				t.Fatalf("Validate err = %v, want ErrInvalidRequest", err)
			}
			if !strings.Contains(err.Error(), wantMsg) {
				t.Fatalf("Validate err = %q, want it to contain %q", err, wantMsg)
			}
		})
	}
	// Each source alone stays valid.
	for _, req := range []Request{
		{Plans: []string{"A1"}, MaxExp: 2},
		{Workload: ws},
		{Query: q},
	} {
		if err := req.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", req, err)
		}
	}
}

// TestQueryJobProducesRegretMaps runs the paper query end to end and
// pins the query extras: the candidate list, the regret overlay, and
// determinism — the same request yields a byte-identical result at any
// parallelism.
func TestQueryJobProducesRegretMaps(t *testing.T) {
	l := NewLocal(LocalConfig{Workers: 2})
	defer closeLocal(t, l)
	ctx := context.Background()

	run := func(parallelism int) *Result {
		t.Helper()
		res, err := Run(ctx, l, Request{Query: smallPaperQuery(3), Rows: 1 << 12, Parallelism: parallelism}, nil)
		if err != nil {
			t.Fatalf("query job (parallelism %d): %v", parallelism, err)
		}
		return res
	}
	serial := run(1)

	if len(serial.Candidates) != 15 {
		t.Fatalf("result carries %d candidates, want 15", len(serial.Candidates))
	}
	if serial.Map2D == nil || serial.Regret2D == nil {
		t.Fatal("query job must produce the measured map and the regret overlay")
	}
	if serial.Regret1D != nil {
		t.Error("a 2-D query job must not carry a 1-D regret map")
	}
	r := serial.Regret2D
	if len(r.Plans) != 15 || len(r.Picks) != len(serial.Map2D.TA) {
		t.Fatalf("regret grid shape: %d plans, %d pick rows", len(r.Plans), len(r.Picks))
	}
	for i := range r.Picks {
		for j, p := range r.Picks[i] {
			if p < 0 || p >= len(r.Plans) {
				t.Fatalf("pick [%d][%d] = %d out of range", i, j, p)
			}
			if r.Regret[i][j] < 1 {
				t.Fatalf("regret [%d][%d] = %v < 1", i, j, r.Regret[i][j])
			}
		}
	}

	parallel := run(-1)
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(parallel)
	if string(a) != string(b) {
		t.Fatal("query job result differs between parallelism 1 and -1")
	}
}

// TestQueryJob1D pins the 1-D path: a single-predicate query sweeps the
// 1-D axis and gets a 1-D regret overlay.
func TestQueryJob1D(t *testing.T) {
	l := NewLocal(LocalConfig{Workers: 1})
	defer closeLocal(t, l)
	ctx := context.Background()

	q := smallPaperQuery(3)
	q.Predicates = q.Predicates[:1]
	q.Columns = nil
	q.Sweep = spec.SweepSpec{MaxExp: 3}
	res, err := Run(ctx, l, Request{Query: q, Rows: 1 << 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Map1D == nil || res.Regret1D == nil {
		t.Fatal("1-D query job must produce Map1D and Regret1D")
	}
	if len(res.Candidates) == 0 {
		t.Fatal("result carries no candidates")
	}
	for i, p := range res.Regret1D.Picks {
		if p < 0 || p >= len(res.Regret1D.Plans) {
			t.Fatalf("pick %d = %d out of range", i, p)
		}
	}
}

// TestQueryRejectedAtSubmit pins admission: a query whose enumerated
// plans cannot compile (schema mismatch against the generator) fails at
// Submit with ErrInvalidRequest, and so does a structurally invalid
// query.
func TestQueryRejectedAtSubmit(t *testing.T) {
	l := NewLocal(LocalConfig{Workers: 1})
	defer closeLocal(t, l)
	ctx := context.Background()

	// Structurally fine (the schema-less catalog defers column checks),
	// but the generator has no column "zz", so compilation fails.
	bad := &spec.QuerySpec{
		Name: "bad-column",
		Catalog: spec.CatalogSpec{
			Tables: []spec.TableSpec{{Name: "lineitem", Rows: 1 << 10}},
		},
		Table:      "lineitem",
		Predicates: []spec.PredSpec{{Column: "zz", Hi: &spec.ValueSpec{Param: "ta"}}},
		Sweep:      spec.SweepSpec{MaxExp: 2},
	}
	if _, err := l.Submit(ctx, Request{Query: bad}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("Submit(bad column) err = %v, want ErrInvalidRequest", err)
	}

	invalid := smallPaperQuery(2)
	invalid.Table = "nope"
	if _, err := l.Submit(ctx, Request{Query: invalid}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("Submit(invalid query) err = %v, want ErrInvalidRequest", err)
	}
}

// joinTestQuery is a small two-table join query: orders (child) joined
// up to customer, a swept predicate on the child and a constant one on
// the parent — the multi-table counterpart of smallPaperQuery.
func joinTestQuery() *spec.QuerySpec {
	c := int64(1 << 7)
	return &spec.QuerySpec{
		Name: "join-orders-customer",
		Catalog: spec.CatalogSpec{
			Tables: []spec.TableSpec{
				{Name: "orders", Rows: 1 << 10, Seed: 8, ForeignKeys: []spec.ForeignKeySpec{
					{Column: "ord_cust", RefTable: "customer", Containment: 0.875},
				}},
				{Name: "customer", Rows: 1 << 8, Seed: 7},
			},
			Indexes: []spec.IndexSpec{
				{Name: "pk_customer", Table: "customer", Columns: []string{"customer_id"}},
				{Name: "idx_orders_a", Table: "orders", Columns: []string{"orders_a"}},
			},
		},
		Table: "orders",
		Joins: []spec.JoinSpec{{Table: "orders", Column: "ord_cust"}},
		Predicates: []spec.PredSpec{
			{Column: "orders_a", Hi: &spec.ValueSpec{Param: spec.ParamTA}},
			{Column: "customer_a", Hi: &spec.ValueSpec{Const: &c}},
		},
		Sweep: spec.SweepSpec{MaxExp: 3},
	}
}

// TestJoinQueryJob runs a multi-table join query end to end: the
// candidate list covers both join orders, the measured map gets the
// regret overlay, and the result is byte-identical at any parallelism.
func TestJoinQueryJob(t *testing.T) {
	l := NewLocal(LocalConfig{Workers: 2})
	defer closeLocal(t, l)
	ctx := context.Background()

	run := func(parallelism int) *Result {
		t.Helper()
		res, err := Run(ctx, l, Request{Query: joinTestQuery(), Parallelism: parallelism}, nil)
		if err != nil {
			t.Fatalf("join query job (parallelism %d): %v", parallelism, err)
		}
		return res
	}
	serial := run(1)
	if len(serial.Candidates) != 8 {
		t.Fatalf("result carries %d candidates, want 8", len(serial.Candidates))
	}
	if serial.Map1D == nil || serial.Regret1D == nil {
		t.Fatal("join query job must produce Map1D and Regret1D")
	}
	for i, p := range serial.Regret1D.Picks {
		if p < 0 || p >= len(serial.Regret1D.Plans) {
			t.Fatalf("pick %d = %d out of range", i, p)
		}
	}

	parallel := run(-1)
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(parallel)
	if string(a) != string(b) {
		t.Fatal("join query job result differs between parallelism 1 and -1")
	}
}

// TestMultiTableRowsOverrideRejected pins the admission rule: a request
// cannot override rows on a multi-table catalog — every table declares
// its own cardinality.
func TestMultiTableRowsOverrideRejected(t *testing.T) {
	req := Request{Query: joinTestQuery(), Rows: 1 << 12}
	err := req.Validate()
	if !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("Validate err = %v, want ErrInvalidRequest", err)
	}
	if want := "rows cannot override a multi-table catalog"; !strings.Contains(err.Error(), want) {
		t.Fatalf("Validate err = %q, want it to contain %q", err, want)
	}
}

// TestJoinResultSizeOracle checks the join-size oracle against ground
// truth: every candidate plan's measured row count at every axis point
// must equal the oracle's answer — and an adaptive (refine) join sweep,
// which leans on that oracle, must succeed.
func TestJoinResultSizeOracle(t *testing.T) {
	r := NewEngineResolver(engine.DefaultConfig())
	rs, err := r.Resolve(Request{Query: joinTestQuery()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.ResultSize == nil {
		t.Fatal("join query resolved without a result-size oracle")
	}
	var sized int64
	for _, ta := range rs.Thresholds {
		want := rs.ResultSize(ta, -1)
		sized += want
		for i, src := range rs.Sources {
			if got := src.Measure(ta, -1).Rows; got != want {
				t.Fatalf("source %d at ta=%d measured %d rows, oracle says %d", i, ta, got, want)
			}
		}
	}
	if sized == 0 {
		t.Fatal("oracle returned 0 at every axis point; the fixture no longer selects anything")
	}

	l := NewLocal(LocalConfig{Workers: 1})
	defer closeLocal(t, l)
	res, err := Run(context.Background(), l, Request{Query: joinTestQuery(), Refine: true}, nil)
	if err != nil {
		t.Fatalf("adaptive join query job: %v", err)
	}
	if res.Mesh1D == nil {
		t.Fatal("adaptive join query job must produce Mesh1D")
	}
}
