package service

import (
	"context"
	"fmt"

	"robustmap/internal/core"
	"robustmap/internal/optimizer"
)

// Runner is how a Local scheduler executes admitted jobs. The default
// runner resolves requests to engine measurements and sweeps them in
// process; the fabric coordinator substitutes a runner that partitions
// the grid into shards and dispatches them to worker daemons. Either
// way the scheduler around it — admission queue, tenant quotas, job
// lifecycle, watch fan-out, TTL GC, archive consultation — is the same
// code, so a coordinator behaves exactly like a daemon from a client's
// point of view.
type Runner interface {
	// Check validates a request at Submit; it must be cheap.
	Check(req Request) error
	// Run executes the job under ctx, reporting progress snapshots to
	// onProgress (never nil; calls may come from any goroutine but are
	// serialized by the caller's publication path).
	Run(ctx context.Context, req Request, onProgress core.ProgressFunc) (*Result, error)
}

// sweepRunner is the default Runner: resolve the request against the
// engine (or a custom Resolver), wrap the sources in the shared cache
// and persistent measurement log, and run the sweep in process. It is
// the pre-fabric Local.execute, extracted so schedulers can swap it.
type sweepRunner struct {
	resolver Resolver
	local    *Local // cache and store live on the scheduler
}

// Check implements Runner.
func (r *sweepRunner) Check(req Request) error { return r.resolver.Check(req) }

// Run implements Runner.
func (r *sweepRunner) Run(ctx context.Context, req Request, onProgress core.ProgressFunc) (*Result, error) {
	rs, err := r.resolver.Resolve(req)
	if err != nil {
		return nil, err
	}
	sources := make([]core.PlanSource, len(rs.Sources))
	for i, src := range rs.Sources {
		scope := ""
		if i < len(rs.Scopes) {
			scope = rs.Scopes[i]
		}
		// Two-tier chain, both optional: LRU in front, persistent log
		// behind it, the real measurement at the bottom. Wrap on a nil
		// cache or store returns the source unchanged.
		sources[i] = r.local.cache.Wrap(scope, r.local.store.Wrap(scope, src))
	}
	// The request's axis, then the shard slice: the thresholds are
	// derived for the whole map first, so a shard's cells carry exactly
	// the values the same cells of an unsharded run carry.
	fracA, ta := rs.Fractions, rs.Thresholds
	if s := req.Shard; s != nil {
		if s.Hi > len(ta) {
			return nil, fmt.Errorf("%w: shard [%d,%d) exceeds the %d-point axis",
				ErrInvalidRequest, s.Lo, s.Hi, len(ta))
		}
		fracA, ta = fracA[s.Lo:s.Hi], ta[s.Lo:s.Hi]
	}
	opts := []core.SweepOption{
		core.WithParallelism(req.Parallelism),
		core.WithProgress(onProgress),
	}
	if req.EffectiveGrid2D() {
		opts = append(opts, core.Grid2D(fracA, rs.Fractions, ta, rs.Thresholds))
	} else {
		opts = append(opts, core.Grid1D(fracA, ta))
	}
	if req.Refine {
		acfg := core.DefaultAdaptiveConfig()
		acfg.ResultSize = rs.ResultSize
		opts = append(opts, core.WithAdaptive(acfg))
	}
	sres, err := core.NewSweep(sources, opts...).Run(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Map1D:  sres.Map1D,
		Mesh1D: sres.Mesh1D,
		Map2D:  sres.Map2D,
		Mesh2D: sres.Mesh2D,
	}
	if rs.Finish != nil {
		if err := rs.Finish(res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// SynthesizeQuery lowers a query request to the workload request its
// measurements actually run: the optimizer enumerates the candidate
// plans, wraps them in a one-system workload over the query's catalog,
// and returns (1) the lowered request and (2) the finish overlay that
// recomputes the candidate list, per-cell picks, and regret grids over
// the assembled maps. The fabric coordinator uses it to shard query
// jobs: shards measure the synthesized workload (shippable by content
// hash like any workload), and the overlay runs once over the merged
// map — which is what keeps regret's neighbor-flip analysis
// byte-identical to a single-process run, where a per-shard overlay
// would see artificial seams at shard boundaries.
func SynthesizeQuery(req Request, defaultRows int64) (Request, func(*Result) error, error) {
	if req.Query == nil {
		return Request{}, nil, fmt.Errorf("%w: not a query request", ErrInvalidRequest)
	}
	if err := req.Validate(); err != nil {
		return Request{}, nil, err
	}
	cands, err := optimizer.Enumerate(req.Query)
	if err != nil {
		return Request{}, nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	ws := optimizer.Workload(req.Query, cands)
	lowered := req
	lowered.Query = nil
	lowered.Workload = ws
	rows := req.EffectiveRows(defaultRows)
	model := optimizer.NewModel(req.Query, rows)
	finish := func(res *Result) error {
		for _, c := range cands {
			res.Candidates = append(res.Candidates, CandidateInfo{
				ID:          c.Plan.ID,
				Description: c.Plan.Description,
				RequiresTB:  c.Plan.RequiresTB || c.Plan.NeedsTB(),
			})
		}
		switch {
		case res.Map2D != nil:
			picks := model.Picks2D(cands, res.Map2D.TA, res.Map2D.TB)
			res.Regret2D = core.NewRegretMap2D(res.Map2D, picks, core.DefaultRegretThreshold)
		case res.Map1D != nil:
			picks := model.Picks1D(cands, res.Map1D.Thresholds)
			res.Regret1D = core.NewRegretMap1D(res.Map1D, picks, core.DefaultRegretThreshold)
		}
		return nil
	}
	return lowered, finish, nil
}
