package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateProfilePath(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		path    string
		wantErr string
	}{
		{"empty disables", "", ""},
		{"fresh file in existing dir", filepath.Join(dir, "cpu.out"), ""},
		{"overwrite existing file", plain, ""},
		{"path is a directory", sub, "is a directory"},
		{"missing parent dir", filepath.Join(dir, "no-such", "cpu.out"), "does not exist"},
		{"parent is a file", filepath.Join(plain, "cpu.out"), "is not a directory"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateProfilePath("-cpuprofile", c.path)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, c.wantErr)
			}
			if !strings.Contains(err.Error(), "-cpuprofile") {
				t.Fatalf("error %v does not name the flag", err)
			}
		})
	}
}

func TestStartCPUProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profile has something to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	stop() // idempotent: second call must not panic or re-stop
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("CPU profile file is empty")
	}
}

func TestStartCPUProfileNoOp(t *testing.T) {
	stop, err := StartCPUProfile("")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be callable
}

func TestStartCPUProfileBadPath(t *testing.T) {
	if _, err := StartCPUProfile(filepath.Join(t.TempDir(), "missing", "cpu.out")); err == nil {
		t.Fatal("expected error for uncreatable path")
	}
}

func TestWriteMemProfile(t *testing.T) {
	if err := WriteMemProfile(""); err != nil {
		t.Fatalf("empty path must be a no-op, got %v", err)
	}
	path := filepath.Join(t.TempDir(), "mem.out")
	if err := WriteMemProfile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile file is empty")
	}
	if err := WriteMemProfile(filepath.Join(t.TempDir(), "missing", "mem.out")); err == nil {
		t.Fatal("expected error for uncreatable path")
	}
}
