// Package cliutil holds the small pieces the sweep-running commands
// (cmd/sweep, cmd/robustmap) used to copy-paste: flag validation with the
// shared error vocabulary, the selectivity axis construction, and the
// live progress line for -progress.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"robustmap/internal/core"
)

// ValidateRows checks a -rows flag that must name a real table size.
func ValidateRows(rows int64) error {
	if rows < 1 {
		return fmt.Errorf("-rows must be at least 1, got %d", rows)
	}
	return nil
}

// ValidateRowsOverride checks a -rows flag where 0 means "use the study
// default".
func ValidateRowsOverride(rows int64) error {
	if rows < 0 {
		return fmt.Errorf("-rows must be positive (or 0 for the study default), got %d", rows)
	}
	return nil
}

// ValidateMaxExp checks a -max-exp flag: sweeps run selectivities
// 2^-maxExp .. 2^0, and exponents beyond 40 exceed any realistic table.
func ValidateMaxExp(maxExp int) error {
	if maxExp < 0 || maxExp > 40 {
		return fmt.Errorf("-max-exp must be between 0 and 40, got %d", maxExp)
	}
	return nil
}

// ValidateParallelism checks a -parallel flag: -1 (all CPUs) or a positive
// worker count; 0 and other negatives are rejected rather than guessed at.
func ValidateParallelism(parallel int) error {
	if parallel == 0 || parallel < -1 {
		return fmt.Errorf("-parallel must be -1 (all CPUs) or at least 1, got %d", parallel)
	}
	return nil
}

// ValidateCacheSize checks a -cache flag: -1 unbounded, 0 off, positive a
// bounded entry count.
func ValidateCacheSize(cache int) error {
	if cache < -1 {
		return fmt.Errorf("-cache must be -1 (unbounded), 0 (off), or a positive entry count, got %d", cache)
	}
	return nil
}

// ProgressLine returns a core.ProgressFunc that renders a live
// cell-count line to w, e.g.
//
//	sweep: 1234/4096 cells measured
//
// and finishes the line (with the interpolated count, when the sweep
// interpolated) on the final report. When w is a terminal the line is
// rewritten in place with carriage returns; otherwise — CI logs, pipes,
// redirected files — each update is a plain newline-terminated line,
// throttled to about one per second so logs stay readable. Safe for
// the sweep's worker goroutines; writes are serialized.
func ProgressLine(w io.Writer) core.ProgressFunc {
	return ProgressLineMode(w, IsTerminal(w))
}

// nonTTYThrottle spaces out plain-line progress updates: a rewritten
// terminal line costs nothing, but every non-TTY update is a log line
// of its own.
const nonTTYThrottle = time.Second

// ProgressLineMode is ProgressLine with the terminal detection pinned —
// exposed for tests and for callers that know better than Stat (e.g. a
// pseudo-terminal behind a pipe).
func ProgressLineMode(w io.Writer, tty bool) core.ProgressFunc {
	var (
		mu       sync.Mutex
		lastLine time.Time
	)
	return func(p core.Progress) {
		mu.Lock()
		defer mu.Unlock()
		if tty {
			if !p.Done {
				fmt.Fprintf(w, "\rsweep: %d/%d cells measured", p.MeasuredCells, p.TotalCells)
				return
			}
			fmt.Fprintf(w, "\rsweep: %s\n", finalCounts(p))
			return
		}
		if !p.Done {
			if time.Since(lastLine) < nonTTYThrottle {
				return
			}
			lastLine = time.Now()
			fmt.Fprintf(w, "sweep: %d/%d cells measured\n", p.MeasuredCells, p.TotalCells)
			return
		}
		fmt.Fprintf(w, "sweep: %s\n", finalCounts(p))
	}
}

// finalCounts renders the Done report's cell counts.
func finalCounts(p core.Progress) string {
	if p.InterpolatedCells > 0 {
		return fmt.Sprintf("%d/%d cells measured, %d interpolated",
			p.MeasuredCells, p.TotalCells, p.InterpolatedCells)
	}
	return fmt.Sprintf("%d/%d cells measured", p.MeasuredCells, p.TotalCells)
}

// IsTerminal reports whether w is a character device — a real terminal
// rather than a pipe, file, or in-memory buffer.
func IsTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}
