// Package cliutil holds the small pieces the sweep-running commands
// (cmd/sweep, cmd/robustmap) used to copy-paste: flag validation with the
// shared error vocabulary, the selectivity axis construction, and the
// live progress line for -progress.
package cliutil

import (
	"fmt"
	"io"
	"sync"

	"robustmap/internal/core"
)

// ValidateRows checks a -rows flag that must name a real table size.
func ValidateRows(rows int64) error {
	if rows < 1 {
		return fmt.Errorf("-rows must be at least 1, got %d", rows)
	}
	return nil
}

// ValidateRowsOverride checks a -rows flag where 0 means "use the study
// default".
func ValidateRowsOverride(rows int64) error {
	if rows < 0 {
		return fmt.Errorf("-rows must be positive (or 0 for the study default), got %d", rows)
	}
	return nil
}

// ValidateMaxExp checks a -max-exp flag: sweeps run selectivities
// 2^-maxExp .. 2^0, and exponents beyond 40 exceed any realistic table.
func ValidateMaxExp(maxExp int) error {
	if maxExp < 0 || maxExp > 40 {
		return fmt.Errorf("-max-exp must be between 0 and 40, got %d", maxExp)
	}
	return nil
}

// ValidateParallelism checks a -parallel flag: -1 (all CPUs) or a positive
// worker count; 0 and other negatives are rejected rather than guessed at.
func ValidateParallelism(parallel int) error {
	if parallel == 0 || parallel < -1 {
		return fmt.Errorf("-parallel must be -1 (all CPUs) or at least 1, got %d", parallel)
	}
	return nil
}

// ValidateCacheSize checks a -cache flag: -1 unbounded, 0 off, positive a
// bounded entry count.
func ValidateCacheSize(cache int) error {
	if cache < -1 {
		return fmt.Errorf("-cache must be -1 (unbounded), 0 (off), or a positive entry count, got %d", cache)
	}
	return nil
}

// SweepAxis returns the selectivity fractions 2^-maxExp .. 2^0 and the
// matching predicate thresholds over a table of the given cardinality
// (thresholds are floored at 1 so every point selects something).
func SweepAxis(rows int64, maxExp int) (fractions []float64, thresholds []int64) {
	for k := maxExp; k >= 0; k-- {
		fractions = append(fractions, 1/float64(int64(1)<<uint(k)))
		t := rows >> uint(k)
		if t < 1 {
			t = 1
		}
		thresholds = append(thresholds, t)
	}
	return fractions, thresholds
}

// ProgressLine returns a core.ProgressFunc that renders a live
// carriage-return cell-count line to w, e.g.
//
//	sweep: 1234/4096 cells measured
//
// and finishes the line (with the interpolated count, when the sweep
// interpolated) on the final report. Safe for the sweep's worker
// goroutines; writes are serialized.
func ProgressLine(w io.Writer) core.ProgressFunc {
	var mu sync.Mutex
	return func(p core.Progress) {
		mu.Lock()
		defer mu.Unlock()
		if !p.Done {
			fmt.Fprintf(w, "\rsweep: %d/%d cells measured", p.MeasuredCells, p.TotalCells)
			return
		}
		if p.InterpolatedCells > 0 {
			fmt.Fprintf(w, "\rsweep: %d/%d cells measured, %d interpolated\n",
				p.MeasuredCells, p.TotalCells, p.InterpolatedCells)
			return
		}
		fmt.Fprintf(w, "\rsweep: %d/%d cells measured\n", p.MeasuredCells, p.TotalCells)
	}
}
