package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// ValidateProfilePath checks a -cpuprofile/-memprofile flag value. The
// empty string disables profiling and is always valid; otherwise the
// path must be creatable: its parent directory must exist and the path
// itself must not name a directory. flagName appears in the error so
// the message points at the offending flag.
func ValidateProfilePath(flagName, path string) error {
	if path == "" {
		return nil
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return fmt.Errorf("%s: %q is a directory", flagName, path)
	}
	dir := filepath.Dir(path)
	fi, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("%s: directory %q does not exist", flagName, dir)
	}
	if !fi.IsDir() {
		return fmt.Errorf("%s: %q is not a directory", flagName, dir)
	}
	return nil
}

// StartCPUProfile begins writing a CPU profile to path and returns a
// stop function that flushes and closes it. An empty path is a no-op:
// the returned stop does nothing. The stop function is idempotent, so
// it can be both deferred and called explicitly before os.Exit.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteMemProfile writes an allocation profile to path, running a GC
// first so the profile reflects the live heap rather than collectable
// garbage. An empty path is a no-op.
func WriteMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
