package cliutil

import (
	"strings"
	"testing"

	"robustmap/internal/core"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		err     error
		wantErr string // substring; "" = valid
	}{
		{"rows ok", ValidateRows(1), ""},
		{"rows large", ValidateRows(1 << 30), ""},
		{"rows zero", ValidateRows(0), "-rows must be at least 1"},
		{"rows negative", ValidateRows(-3), "-rows must be at least 1"},

		{"rows override default", ValidateRowsOverride(0), ""},
		{"rows override ok", ValidateRowsOverride(42), ""},
		{"rows override negative", ValidateRowsOverride(-1), "-rows must be positive"},

		{"max-exp zero", ValidateMaxExp(0), ""},
		{"max-exp top", ValidateMaxExp(40), ""},
		{"max-exp negative", ValidateMaxExp(-1), "-max-exp must be between 0 and 40"},
		{"max-exp huge", ValidateMaxExp(41), "-max-exp must be between 0 and 40"},

		{"parallel serial", ValidateParallelism(1), ""},
		{"parallel workers", ValidateParallelism(16), ""},
		{"parallel all CPUs", ValidateParallelism(-1), ""},
		{"parallel zero", ValidateParallelism(0), "-parallel must be -1"},
		{"parallel negative", ValidateParallelism(-2), "-parallel must be -1"},

		{"cache off", ValidateCacheSize(0), ""},
		{"cache unbounded", ValidateCacheSize(-1), ""},
		{"cache bounded", ValidateCacheSize(128), ""},
		{"cache negative", ValidateCacheSize(-2), "-cache must be -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			switch {
			case tc.wantErr == "" && tc.err != nil:
				t.Fatalf("unexpected error: %v", tc.err)
			case tc.wantErr != "" && tc.err == nil:
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(tc.err.Error(), tc.wantErr):
				t.Fatalf("error %q does not contain %q", tc.err, tc.wantErr)
			}
		})
	}
}

func TestSweepAxis(t *testing.T) {
	fr, th := SweepAxis(1<<10, 4)
	if len(fr) != 5 || len(th) != 5 {
		t.Fatalf("axis lengths = %d, %d, want 5", len(fr), len(th))
	}
	wantFr := []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1}
	wantTh := []int64{64, 128, 256, 512, 1024}
	for i := range fr {
		if fr[i] != wantFr[i] || th[i] != wantTh[i] {
			t.Fatalf("axis[%d] = (%g, %d), want (%g, %d)", i, fr[i], th[i], wantFr[i], wantTh[i])
		}
	}
	// Thresholds floor at 1 when the fraction selects less than a row.
	_, th = SweepAxis(4, 4)
	if th[0] != 1 {
		t.Fatalf("threshold floor = %d, want 1", th[0])
	}
}

func TestProgressLine(t *testing.T) {
	var b strings.Builder
	fn := ProgressLine(&b)
	fn(core.Progress{MeasuredCells: 3, TotalCells: 10})
	fn(core.Progress{MeasuredCells: 10, TotalCells: 10, Done: true})
	out := b.String()
	if !strings.Contains(out, "3/10 cells measured") {
		t.Errorf("missing interim line: %q", out)
	}
	if !strings.Contains(out, "10/10 cells measured\n") {
		t.Errorf("final line not terminated: %q", out)
	}

	b.Reset()
	ProgressLine(&b)(core.Progress{MeasuredCells: 4, InterpolatedCells: 6, TotalCells: 10, Done: true})
	if !strings.Contains(b.String(), "6 interpolated") {
		t.Errorf("adaptive final line missing interpolated count: %q", b.String())
	}
}
