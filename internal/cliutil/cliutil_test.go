package cliutil

import (
	"os"
	"strings"
	"testing"

	"robustmap/internal/core"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		err     error
		wantErr string // substring; "" = valid
	}{
		{"rows ok", ValidateRows(1), ""},
		{"rows large", ValidateRows(1 << 30), ""},
		{"rows zero", ValidateRows(0), "-rows must be at least 1"},
		{"rows negative", ValidateRows(-3), "-rows must be at least 1"},

		{"rows override default", ValidateRowsOverride(0), ""},
		{"rows override ok", ValidateRowsOverride(42), ""},
		{"rows override negative", ValidateRowsOverride(-1), "-rows must be positive"},

		{"max-exp zero", ValidateMaxExp(0), ""},
		{"max-exp top", ValidateMaxExp(40), ""},
		{"max-exp negative", ValidateMaxExp(-1), "-max-exp must be between 0 and 40"},
		{"max-exp huge", ValidateMaxExp(41), "-max-exp must be between 0 and 40"},

		{"parallel serial", ValidateParallelism(1), ""},
		{"parallel workers", ValidateParallelism(16), ""},
		{"parallel all CPUs", ValidateParallelism(-1), ""},
		{"parallel zero", ValidateParallelism(0), "-parallel must be -1"},
		{"parallel negative", ValidateParallelism(-2), "-parallel must be -1"},

		{"cache off", ValidateCacheSize(0), ""},
		{"cache unbounded", ValidateCacheSize(-1), ""},
		{"cache bounded", ValidateCacheSize(128), ""},
		{"cache negative", ValidateCacheSize(-2), "-cache must be -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			switch {
			case tc.wantErr == "" && tc.err != nil:
				t.Fatalf("unexpected error: %v", tc.err)
			case tc.wantErr != "" && tc.err == nil:
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(tc.err.Error(), tc.wantErr):
				t.Fatalf("error %q does not contain %q", tc.err, tc.wantErr)
			}
		})
	}
}

func TestProgressLine(t *testing.T) {
	// A strings.Builder is not a terminal, so ProgressLine autodetects
	// plain-line mode: newline-terminated lines, no \r rewriting.
	var b strings.Builder
	fn := ProgressLine(&b)
	fn(core.Progress{MeasuredCells: 3, TotalCells: 10})
	fn(core.Progress{MeasuredCells: 10, TotalCells: 10, Done: true})
	out := b.String()
	if !strings.Contains(out, "3/10 cells measured\n") {
		t.Errorf("missing interim line: %q", out)
	}
	if !strings.Contains(out, "10/10 cells measured\n") {
		t.Errorf("final line not terminated: %q", out)
	}
	if strings.Contains(out, "\r") {
		t.Errorf("non-TTY output rewrites with \\r: %q", out)
	}

	b.Reset()
	ProgressLine(&b)(core.Progress{MeasuredCells: 4, InterpolatedCells: 6, TotalCells: 10, Done: true})
	if !strings.Contains(b.String(), "6 interpolated") {
		t.Errorf("adaptive final line missing interpolated count: %q", b.String())
	}
}

func TestProgressLineNonTTYThrottle(t *testing.T) {
	// Rapid interim reports collapse to the first line (plus the final
	// report, which always prints) so CI logs stay readable.
	var b strings.Builder
	fn := ProgressLineMode(&b, false)
	for i := 1; i <= 100; i++ {
		fn(core.Progress{MeasuredCells: i, TotalCells: 100})
	}
	fn(core.Progress{MeasuredCells: 100, TotalCells: 100, Done: true})
	lines := strings.Count(b.String(), "\n")
	if lines != 2 {
		t.Errorf("rapid updates produced %d lines, want 2 (first interim + final):\n%s",
			lines, b.String())
	}
}

func TestProgressLineTTYMode(t *testing.T) {
	// Terminal mode rewrites the line in place and terminates it only on
	// the final report.
	var b strings.Builder
	fn := ProgressLineMode(&b, true)
	fn(core.Progress{MeasuredCells: 3, TotalCells: 10})
	fn(core.Progress{MeasuredCells: 7, TotalCells: 10})
	fn(core.Progress{MeasuredCells: 10, TotalCells: 10, Done: true})
	out := b.String()
	if want := "\rsweep: 3/10 cells measured\rsweep: 7/10 cells measured\rsweep: 10/10 cells measured\n"; out != want {
		t.Errorf("tty output = %q, want %q", out, want)
	}
}

func TestIsTerminal(t *testing.T) {
	var b strings.Builder
	if IsTerminal(&b) {
		t.Error("strings.Builder detected as a terminal")
	}
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if IsTerminal(f) {
		t.Error("regular file detected as a terminal")
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	if IsTerminal(w) {
		t.Error("pipe detected as a terminal")
	}
}
