package storage

import "fmt"

// HeapFile is an append-oriented file of slotted pages holding encoded rows.
// The base tables of the experiments are heap files (or clustered B-trees;
// see internal/btree). Row order is insertion order, which the data
// generator randomizes relative to the indexed columns — the physical
// scatter that makes unsorted RID fetching expensive in the paper's
// "traditional index scan".
type HeapFile struct {
	pool *Pool
	file FileID
	rows int64
}

// CreateHeap creates an empty heap file on the pool's disk.
func CreateHeap(pool *Pool) *HeapFile {
	return &HeapFile{pool: pool, file: pool.Disk().CreateFile()}
}

// OpenHeap reopens an existing heap file with a known row count. Used when
// an engine is rebuilt over an existing disk between experiment runs.
func OpenHeap(pool *Pool, file FileID, rows int64) *HeapFile {
	if !pool.Disk().Exists(file) {
		panic(fmt.Sprintf("storage: OpenHeap of unknown file %d", file))
	}
	return &HeapFile{pool: pool, file: file, rows: rows}
}

// File returns the heap's file id.
func (h *HeapFile) File() FileID { return h.file }

// NumRows returns the number of rows ever appended (deletes not tracked;
// the experiment workloads are append-only).
func (h *HeapFile) NumRows() int64 { return h.rows }

// NumPages returns the heap's size in pages.
func (h *HeapFile) NumPages() PageNo { return h.pool.Disk().NumPages(h.file) }

// Append stores an encoded row and returns its RID. The write path is used
// only at load time, so it charges buffer-pool costs like any other access
// (experiments reset the clock after loading).
func (h *HeapFile) Append(rec []byte) RID {
	disk := h.pool.Disk()
	n := disk.NumPages(h.file)
	if n > 0 {
		last := n - 1
		data := h.pool.Get(h.file, last)
		sp := AsSlotted(data)
		if slot, ok := sp.Insert(rec); ok {
			h.pool.MarkDirty(h.file, last)
			h.pool.Unpin(h.file, last)
			h.rows++
			return RID{File: h.file, Page: last, Slot: slot}
		}
		h.pool.Unpin(h.file, last)
	}
	pn := disk.AllocPage(h.file)
	data := h.pool.Get(h.file, pn)
	sp := InitSlotted(data)
	slot, ok := sp.Insert(rec)
	if !ok {
		panic("storage: record does not fit an empty page")
	}
	h.pool.MarkDirty(h.file, pn)
	h.pool.Unpin(h.file, pn)
	h.rows++
	return RID{File: h.file, Page: pn, Slot: slot}
}

// Fetch returns the encoded row at rid. The returned slice aliases the page;
// callers must copy or decode before the next pool operation if they retain
// it. ok=false means the slot is deleted.
func (h *HeapFile) Fetch(rid RID) ([]byte, bool) {
	if rid.File != h.file {
		panic(fmt.Sprintf("storage: fetch of %v from heap file %d", rid, h.file))
	}
	data := h.pool.Get(h.file, rid.Page)
	sp := AsSlotted(data)
	rec, ok := sp.Get(rid.Slot)
	h.pool.Unpin(h.file, rid.Page)
	return rec, ok
}

// PageRecords pins a page and returns all live records with their slots.
// The callback style keeps the pin window tight.
func (h *HeapFile) PageRecords(page PageNo, fn func(Slot, []byte)) {
	data := h.pool.Get(h.file, page)
	sp := AsSlotted(data)
	for i := 0; i < sp.NumSlots(); i++ {
		if rec, ok := sp.Get(Slot(i)); ok {
			fn(Slot(i), rec)
		}
	}
	h.pool.Unpin(h.file, page)
}

// Scan iterates every live record in physical order, prefetching in device
// units — the table-scan access pattern whose flat cost anchors Figure 1.
// The callback must not retain rec.
func (h *HeapFile) Scan(fn func(RID, []byte) bool) {
	n := h.NumPages()
	unit := PageNo(h.pool.PrefetchUnit())
	for at := PageNo(0); at < n; at += unit {
		k := unit
		if rem := n - at; rem < k {
			k = rem
		}
		h.pool.Prefetch(h.file, at, int(k))
		for pg := at; pg < at+k; pg++ {
			data := h.pool.Get(h.file, pg)
			sp := AsSlotted(data)
			stop := false
			for i := 0; i < sp.NumSlots(); i++ {
				if rec, ok := sp.Get(Slot(i)); ok {
					if !fn(RID{File: h.file, Page: pg, Slot: Slot(i)}, rec) {
						stop = true
						break
					}
				}
			}
			h.pool.Unpin(h.file, pg)
			if stop {
				return
			}
		}
	}
}

// Update replaces the row at rid in place (MVCC version-chain maintenance).
// Returns false if the page cannot hold the new version.
func (h *HeapFile) Update(rid RID, rec []byte) bool {
	data := h.pool.Get(h.file, rid.Page)
	sp := AsSlotted(data)
	ok := sp.Update(rid.Slot, rec)
	if ok {
		h.pool.MarkDirty(h.file, rid.Page)
	}
	h.pool.Unpin(h.file, rid.Page)
	return ok
}
