package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func freshPage() SlottedPage {
	return InitSlotted(make([]byte, PageSize))
}

func TestInsertGetRoundTrip(t *testing.T) {
	p := freshPage()
	recs := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma rays")}
	slots := make([]Slot, len(recs))
	for i, r := range recs {
		s, ok := p.Insert(r)
		if !ok {
			t.Fatalf("Insert(%q) failed", r)
		}
		slots[i] = s
	}
	for i, r := range recs {
		got, ok := p.Get(slots[i])
		if !ok || !bytes.Equal(got, r) {
			t.Errorf("Get(%d) = %q, %v; want %q", slots[i], got, ok, r)
		}
	}
	if p.NumSlots() != len(recs) {
		t.Errorf("NumSlots = %d, want %d", p.NumSlots(), len(recs))
	}
}

func TestInsertUntilFull(t *testing.T) {
	p := freshPage()
	rec := make([]byte, 100)
	count := 0
	for {
		if _, ok := p.Insert(rec); !ok {
			break
		}
		count++
	}
	// 8192 bytes / (100 payload + 4 slot) ≈ 78 records.
	if count < 70 || count > 82 {
		t.Errorf("page held %d 100-byte records, want ~78", count)
	}
	if p.FreeSpace() >= 100 {
		t.Errorf("FreeSpace = %d after fill, want < 100", p.FreeSpace())
	}
	// Existing records must survive the failed insert.
	if _, ok := p.Get(0); !ok {
		t.Error("record 0 lost after failed insert")
	}
}

func TestZeroedPageIsValidEmpty(t *testing.T) {
	p := AsSlotted(make([]byte, PageSize))
	if p.NumSlots() != 0 {
		t.Errorf("zeroed page NumSlots = %d", p.NumSlots())
	}
	if s, ok := p.Insert([]byte("x")); !ok || s != 0 {
		t.Errorf("Insert on zeroed page = %d, %v", s, ok)
	}
}

func TestDelete(t *testing.T) {
	p := freshPage()
	s, _ := p.Insert([]byte("doomed"))
	p.Delete(s)
	if _, ok := p.Get(s); ok {
		t.Error("Get returned deleted record")
	}
	// Slot count unchanged; new inserts get fresh slots.
	s2, _ := p.Insert([]byte("new"))
	if s2 == s {
		t.Error("slot reused after delete")
	}
}

func TestUpdateInPlaceAndRelocate(t *testing.T) {
	p := freshPage()
	s, _ := p.Insert([]byte("abcdef"))
	if !p.Update(s, []byte("xyz")) {
		t.Fatal("shrinking update failed")
	}
	got, _ := p.Get(s)
	if string(got) != "xyz" {
		t.Errorf("after shrink Get = %q", got)
	}
	if !p.Update(s, []byte("a much longer record than before")) {
		t.Fatal("growing update failed")
	}
	got, _ = p.Get(s)
	if string(got) != "a much longer record than before" {
		t.Errorf("after grow Get = %q", got)
	}
}

func TestUpdateFailsWhenFull(t *testing.T) {
	p := freshPage()
	s, _ := p.Insert(bytes.Repeat([]byte{1}, 10))
	big := bytes.Repeat([]byte{2}, PageSize)
	defer func() {
		if recover() == nil {
			t.Error("oversized record did not panic")
		}
	}()
	// Fill the page first so relocation must fail.
	filler := bytes.Repeat([]byte{3}, 1000)
	for {
		if _, ok := p.Insert(filler); !ok {
			break
		}
	}
	if p.Update(s, bytes.Repeat([]byte{4}, 2000)) {
		t.Error("growing update succeeded on full page")
	}
	p.Insert(big) // must panic
}

func TestGetOutOfRangePanics(t *testing.T) {
	p := freshPage()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.Get(5)
}

func TestSlottedQuickRoundTrip(t *testing.T) {
	f := func(recs [][]byte) bool {
		p := freshPage()
		var kept []int
		for i, r := range recs {
			if len(r) > 512 {
				r = r[:512]
				recs[i] = r
			}
			if _, ok := p.Insert(r); ok {
				kept = append(kept, i)
			} else {
				break
			}
		}
		for j, i := range kept {
			got, ok := p.Get(Slot(j))
			if !ok || !bytes.Equal(got, recs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRIDOrdering(t *testing.T) {
	rids := []RID{
		{1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {2, 0, 0},
	}
	for i := 0; i < len(rids); i++ {
		for j := 0; j < len(rids); j++ {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := rids[i].Compare(rids[j]); got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", rids[i], rids[j], got, want)
			}
			if gotLess := rids[i].Less(rids[j]); gotLess != (want < 0) {
				t.Errorf("Less(%v,%v) = %v", rids[i], rids[j], gotLess)
			}
		}
	}
	if s := (RID{1, 2, 3}).String(); s != "1:2:3" {
		t.Errorf("RID.String = %q", s)
	}
}
