package storage

import (
	"testing"

	"robustmap/internal/iomodel"
	"robustmap/internal/simclock"
)

func newPool(t *testing.T, capacity int) (*Pool, *simclock.Clock) {
	t.Helper()
	c := simclock.New()
	dev := iomodel.NewDevice(iomodel.DefaultParams(), c)
	return NewPool(NewDisk(), dev, c, capacity), c
}

func TestPoolCapacityMinimum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity < 4")
		}
	}()
	newPool(t, 3)
}

func TestGetMissThenHit(t *testing.T) {
	p, c := newPool(t, 8)
	f := p.Disk().CreateFile()
	p.Disk().AllocPage(f)

	p.Get(f, 0)
	p.Unpin(f, 0)
	missCost := c.Now()
	if missCost == 0 {
		t.Fatal("miss charged nothing")
	}

	before := c.Now()
	p.Get(f, 0)
	p.Unpin(f, 0)
	hitCost := c.Now() - before
	if hitCost >= missCost {
		t.Errorf("hit cost %v not cheaper than miss cost %v", hitCost, missCost)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestPageDataIsShared(t *testing.T) {
	p, _ := newPool(t, 8)
	f := p.Disk().CreateFile()
	p.Disk().AllocPage(f)
	d1 := p.Get(f, 0)
	d1[0] = 0xAB
	p.MarkDirty(f, 0)
	p.Unpin(f, 0)
	d2 := p.Get(f, 0)
	if d2[0] != 0xAB {
		t.Error("modification lost across Get calls")
	}
	p.Unpin(f, 0)
}

func TestEvictionRespectsCapacity(t *testing.T) {
	p, _ := newPool(t, 4)
	f := p.Disk().CreateFile()
	for i := 0; i < 10; i++ {
		p.Disk().AllocPage(f)
	}
	for i := PageNo(0); i < 10; i++ {
		p.Get(f, i)
		p.Unpin(f, i)
	}
	resident := 0
	for i := PageNo(0); i < 10; i++ {
		if p.Resident(f, i) {
			resident++
		}
	}
	if resident > 4 {
		t.Errorf("%d pages resident, capacity 4", resident)
	}
	if p.Stats().Evictions < 6 {
		t.Errorf("Evictions = %d, want >= 6", p.Stats().Evictions)
	}
}

func TestClockKeepsHotPage(t *testing.T) {
	p, _ := newPool(t, 4)
	f := p.Disk().CreateFile()
	for i := 0; i < 12; i++ {
		p.Disk().AllocPage(f)
	}
	// Touch page 0 between every other access: its ref bit stays set, so
	// the clock sweep should preferentially evict the others.
	for i := PageNo(1); i < 12; i++ {
		p.Get(f, 0)
		p.Unpin(f, 0)
		p.Get(f, i)
		p.Unpin(f, i)
	}
	if !p.Resident(f, 0) {
		t.Error("hot page evicted")
	}
}

func TestPinnedPageNotEvicted(t *testing.T) {
	p, _ := newPool(t, 4)
	f := p.Disk().CreateFile()
	for i := 0; i < 8; i++ {
		p.Disk().AllocPage(f)
	}
	p.Get(f, 0) // hold the pin
	for i := PageNo(1); i < 8; i++ {
		p.Get(f, i)
		p.Unpin(f, i)
	}
	if !p.Resident(f, 0) {
		t.Fatal("pinned page evicted")
	}
	p.Unpin(f, 0)
}

func TestAllPinnedPanics(t *testing.T) {
	p, _ := newPool(t, 4)
	f := p.Disk().CreateFile()
	for i := 0; i < 5; i++ {
		p.Disk().AllocPage(f)
	}
	for i := PageNo(0); i < 4; i++ {
		p.Get(f, i) // leak pins
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when all frames pinned")
		}
	}()
	p.Get(f, 4)
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	p, _ := newPool(t, 8)
	f := p.Disk().CreateFile()
	p.Disk().AllocPage(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Unpin(f, 0)
}

func TestDirtyEvictionChargesWrite(t *testing.T) {
	p, c := newPool(t, 4)
	f := p.Disk().CreateFile()
	for i := 0; i < 8; i++ {
		p.Disk().AllocPage(f)
	}
	p.Get(f, 0)
	p.MarkDirty(f, 0)
	p.Unpin(f, 0)
	for i := PageNo(1); i < 8; i++ { // force eviction of page 0
		p.Get(f, i)
		p.Unpin(f, i)
	}
	if c.Spent(simclock.AccountSpillIO) == 0 {
		t.Error("dirty eviction charged no write cost")
	}
	if p.Device().Stats().PagesWritten == 0 {
		t.Error("dirty eviction wrote no pages")
	}
}

func TestFlushAllEmptiesPool(t *testing.T) {
	p, _ := newPool(t, 8)
	f := p.Disk().CreateFile()
	for i := 0; i < 4; i++ {
		p.Disk().AllocPage(f)
		p.Get(f, PageNo(i))
		p.Unpin(f, PageNo(i))
	}
	p.FlushAll()
	for i := PageNo(0); i < 4; i++ {
		if p.Resident(f, i) {
			t.Errorf("page %d resident after FlushAll", i)
		}
	}
}

func TestPrefetchMakesScanSequentialPrice(t *testing.T) {
	p, c := newPool(t, 8)
	f := p.Disk().CreateFile()
	const n = 128
	for i := 0; i < n; i++ {
		p.Disk().AllocPage(f)
	}
	p.Prefetch(f, 0, n)
	for i := PageNo(0); i < n; i++ {
		p.Get(f, i)
		p.Unpin(f, i)
	}
	params := p.Device().Params()
	// One seek for the prefetch unit plus n transfers plus latch costs; far
	// below n random reads.
	if c.Now() > params.RandomCost(8) {
		t.Errorf("prefetched scan cost %v, want well below 8 random reads %v",
			c.Now(), params.RandomCost(8))
	}
}
