package storage

import "fmt"

// Disk is the simulated persistent store: a set of files, each an extendable
// array of PageSize pages. Disk does no cost accounting — that is the buffer
// pool's job — and is deliberately dumb so that tests can inspect raw pages.
type Disk struct {
	files  map[FileID][][]byte
	nextID FileID
}

// NewDisk returns an empty disk.
func NewDisk() *Disk {
	return &Disk{files: make(map[FileID][][]byte), nextID: 1}
}

// CreateFile allocates a new empty file and returns its id.
func (d *Disk) CreateFile() FileID {
	id := d.nextID
	d.nextID++
	d.files[id] = nil
	return id
}

// DropFile removes a file and its pages. Dropping an unknown file panics:
// files are managed by the engine, never by user input.
func (d *Disk) DropFile(id FileID) {
	if _, ok := d.files[id]; !ok {
		panic(fmt.Sprintf("storage: drop of unknown file %d", id))
	}
	delete(d.files, id)
}

// NumPages returns the number of pages in the file.
func (d *Disk) NumPages(id FileID) PageNo {
	pages, ok := d.files[id]
	if !ok {
		panic(fmt.Sprintf("storage: NumPages of unknown file %d", id))
	}
	return PageNo(len(pages))
}

// AllocPage appends a zeroed page to the file and returns its page number.
func (d *Disk) AllocPage(id FileID) PageNo {
	pages, ok := d.files[id]
	if !ok {
		panic(fmt.Sprintf("storage: alloc in unknown file %d", id))
	}
	d.files[id] = append(pages, make([]byte, PageSize))
	return PageNo(len(pages))
}

// PageData returns the raw backing slice of a page. It performs no cost
// accounting: callers that model physical access (spill writers, readers)
// must charge the device themselves. Engine-internal code only.
func (d *Disk) PageData(id FileID, n PageNo) []byte { return d.page(id, n) }

// page returns the raw backing slice of a page.
func (d *Disk) page(id FileID, n PageNo) []byte {
	pages, ok := d.files[id]
	if !ok {
		panic(fmt.Sprintf("storage: access to unknown file %d", id))
	}
	if n < 0 || int(n) >= len(pages) {
		panic(fmt.Sprintf("storage: page %d out of range [0,%d) in file %d", n, len(pages), id))
	}
	return pages[n]
}

// Exists reports whether the file is present.
func (d *Disk) Exists(id FileID) bool {
	_, ok := d.files[id]
	return ok
}
