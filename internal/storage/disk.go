package storage

import (
	"fmt"
	"sync"
)

// Disk is the simulated persistent store: a set of files, each an extendable
// array of PageSize pages. Disk does no cost accounting — that is the buffer
// pool's job — and is deliberately dumb so that tests can inspect raw pages.
//
// # Concurrency
//
// A Disk is shared by every session that runs queries over one loaded
// system, and sessions may run on concurrent goroutines (see
// engine.Session). The file table itself — create, drop, extend, lookup —
// is guarded by a mutex, so concurrent sessions can create and drop their
// private scratch files (sort spill runs, hash partitions, RID runs)
// without racing.
//
// Page *contents* are not guarded. The contract is ownership-based:
//
//   - pages of files loaded before concurrent execution begins (the base
//     table and indexes) are read-only during runs, and may be read by any
//     number of sessions;
//   - pages of a file created during a run belong to the creating session
//     alone until the file is dropped; no other session may touch them.
//
// Every writer in the engine (heap load, B-tree build, spill writers)
// follows this contract, which is what lets robustness-map sweeps fan out
// measurement runs across goroutines.
type Disk struct {
	mu     sync.RWMutex
	files  map[FileID][][]byte
	nextID FileID
}

// NewDisk returns an empty disk.
func NewDisk() *Disk {
	return &Disk{files: make(map[FileID][][]byte), nextID: 1}
}

// CreateFile allocates a new empty file and returns its id. File ids are
// never reused, so a stale reference to a dropped file can only panic, not
// alias another session's data.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.files[id] = nil
	return id
}

// DropFile removes a file and its pages. Dropping an unknown file panics:
// files are managed by the engine, never by user input.
func (d *Disk) DropFile(id FileID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[id]; !ok {
		panic(fmt.Sprintf("storage: drop of unknown file %d", id))
	}
	delete(d.files, id)
}

// NumPages returns the number of pages in the file.
func (d *Disk) NumPages(id FileID) PageNo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	pages, ok := d.files[id]
	if !ok {
		panic(fmt.Sprintf("storage: NumPages of unknown file %d", id))
	}
	return PageNo(len(pages))
}

// AllocPage appends a zeroed page to the file and returns its page number.
func (d *Disk) AllocPage(id FileID) PageNo {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id]
	if !ok {
		panic(fmt.Sprintf("storage: alloc in unknown file %d", id))
	}
	d.files[id] = append(pages, make([]byte, PageSize))
	return PageNo(len(pages))
}

// PageData returns the raw backing slice of a page. It performs no cost
// accounting: callers that model physical access (spill writers, readers)
// must charge the device themselves. Engine-internal code only. The
// returned slice stays valid after the lock is released — pages are
// allocated once and never moved — but writing through it is only legal for
// the session that owns the file (see the type comment).
func (d *Disk) PageData(id FileID, n PageNo) []byte { return d.page(id, n) }

// page returns the raw backing slice of a page.
func (d *Disk) page(id FileID, n PageNo) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	pages, ok := d.files[id]
	if !ok {
		panic(fmt.Sprintf("storage: access to unknown file %d", id))
	}
	if n < 0 || int(n) >= len(pages) {
		panic(fmt.Sprintf("storage: page %d out of range [0,%d) in file %d", n, len(pages), id))
	}
	return pages[n]
}

// Exists reports whether the file is present.
func (d *Disk) Exists(id FileID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[id]
	return ok
}
