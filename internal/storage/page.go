// Package storage implements the physical layer of the engine: an in-memory
// simulated disk of fixed-size pages, a buffer pool with clock eviction that
// charges all misses to an iomodel.Device, slotted pages, and heap files.
//
// Every page touched by the executor flows through the buffer pool, so the
// virtual-time cost of a query is exactly the physical access pattern the
// plan induces — the quantity the paper's robustness maps visualize.
package storage

import "fmt"

// PageSize is the size of every page in bytes (8 KiB, the common unit of the
// systems the paper measured).
const PageSize = 8192

// FileID identifies a file on the simulated disk.
type FileID uint32

// PageNo is a zero-based page number within a file.
type PageNo int64

// Slot is a record slot index within a slotted page.
type Slot uint16

// RID is a record identifier: the physical address of a row.
// Secondary indexes store RIDs; fetch operators resolve them.
type RID struct {
	File FileID
	Page PageNo
	Slot Slot
}

// Less orders RIDs by physical position: file, then page, then slot.
// Sorting RIDs into this order is what turns the paper's "traditional"
// index scan into the "improved" one.
func (r RID) Less(o RID) bool {
	if r.File != o.File {
		return r.File < o.File
	}
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// String renders the RID for debugging.
func (r RID) String() string {
	return fmt.Sprintf("%d:%d:%d", r.File, r.Page, r.Slot)
}

// Compare returns -1, 0, or 1 ordering RIDs physically.
func (r RID) Compare(o RID) int {
	switch {
	case r.Less(o):
		return -1
	case o.Less(r):
		return 1
	default:
		return 0
	}
}
