package storage

import (
	"bytes"
	"fmt"
	"testing"

	"robustmap/internal/iomodel"
	"robustmap/internal/simclock"
)

func newHeap(t *testing.T, poolPages int) (*HeapFile, *Pool, *simclock.Clock) {
	t.Helper()
	c := simclock.New()
	dev := iomodel.NewDevice(iomodel.DefaultParams(), c)
	pool := NewPool(NewDisk(), dev, c, poolPages)
	return CreateHeap(pool), pool, c
}

func TestHeapAppendFetch(t *testing.T) {
	h, _, _ := newHeap(t, 16)
	var rids []RID
	for i := 0; i < 1000; i++ {
		rids = append(rids, h.Append([]byte(fmt.Sprintf("row-%04d", i))))
	}
	if h.NumRows() != 1000 {
		t.Errorf("NumRows = %d", h.NumRows())
	}
	if h.NumPages() < 2 {
		t.Errorf("NumPages = %d, want multiple pages", h.NumPages())
	}
	for i, rid := range rids {
		rec, ok := h.Fetch(rid)
		if !ok || string(rec) != fmt.Sprintf("row-%04d", i) {
			t.Fatalf("Fetch(%v) = %q, %v", rid, rec, ok)
		}
	}
}

func TestHeapScanOrderAndCompleteness(t *testing.T) {
	h, _, _ := newHeap(t, 16)
	const n = 2000
	for i := 0; i < n; i++ {
		h.Append([]byte(fmt.Sprintf("%06d", i)))
	}
	var seen int
	last := RID{}
	first := true
	h.Scan(func(rid RID, rec []byte) bool {
		if !first && !last.Less(rid) {
			t.Fatalf("scan out of order: %v then %v", last, rid)
		}
		if string(rec) != fmt.Sprintf("%06d", seen) {
			t.Fatalf("row %d = %q", seen, rec)
		}
		last, first = rid, false
		seen++
		return true
	})
	if seen != n {
		t.Errorf("scan saw %d rows, want %d", seen, n)
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h, _, _ := newHeap(t, 16)
	for i := 0; i < 500; i++ {
		h.Append([]byte("x"))
	}
	var seen int
	h.Scan(func(RID, []byte) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Errorf("scan visited %d rows after stop, want 10", seen)
	}
}

func TestHeapScanCheaperThanRandomFetch(t *testing.T) {
	// The core asymmetry of Figure 1: scanning all rows sequentially must be
	// far cheaper than fetching each row by RID in key (scattered) order.
	h, pool, c := newHeap(t, 64)
	const n = 5000
	rec := bytes.Repeat([]byte{7}, 100)
	var rids []RID
	for i := 0; i < n; i++ {
		rids = append(rids, h.Append(rec))
	}
	pool.FlushAll()
	c.Reset()
	h.Scan(func(RID, []byte) bool { return true })
	scanCost := c.Now()

	// Scatter the fetch order deterministically.
	scattered := make([]RID, n)
	for i, r := range rids {
		scattered[(i*7919)%n] = r
	}
	pool.FlushAll()
	c.Reset()
	for _, r := range scattered {
		h.Fetch(r)
	}
	fetchCost := c.Now()

	if fetchCost < 5*scanCost {
		t.Errorf("scattered fetch %v vs scan %v: want >= 5x asymmetry", fetchCost, scanCost)
	}
}

func TestHeapUpdate(t *testing.T) {
	h, _, _ := newHeap(t, 16)
	rid := h.Append([]byte("original"))
	if !h.Update(rid, []byte("new")) {
		t.Fatal("Update failed")
	}
	rec, ok := h.Fetch(rid)
	if !ok || string(rec) != "new" {
		t.Errorf("after update Fetch = %q, %v", rec, ok)
	}
}

func TestHeapPageRecords(t *testing.T) {
	h, _, _ := newHeap(t, 16)
	for i := 0; i < 10; i++ {
		h.Append([]byte{byte(i)})
	}
	var got []byte
	h.PageRecords(0, func(s Slot, rec []byte) {
		got = append(got, rec[0])
	})
	if len(got) != 10 {
		t.Fatalf("PageRecords saw %d records", len(got))
	}
	for i, b := range got {
		if int(b) != i {
			t.Errorf("record %d = %d", i, b)
		}
	}
}

func TestOpenHeap(t *testing.T) {
	h, pool, _ := newHeap(t, 16)
	rid := h.Append([]byte("persist"))
	h2 := OpenHeap(pool, h.File(), h.NumRows())
	rec, ok := h2.Fetch(rid)
	if !ok || string(rec) != "persist" {
		t.Errorf("reopened Fetch = %q, %v", rec, ok)
	}
	if h2.NumRows() != 1 {
		t.Errorf("reopened NumRows = %d", h2.NumRows())
	}
}

func TestFetchWrongFilePanics(t *testing.T) {
	h, _, _ := newHeap(t, 16)
	h.Append([]byte("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Fetch(RID{File: h.File() + 99, Page: 0, Slot: 0})
}
