package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted page layout (all offsets little-endian uint16):
//
//	[0:2)  slot count
//	[2:4)  free-space pointer (offset of first unused byte of the cell area)
//	[4:..) cell area, growing upward
//	[..:PageSize) slot directory, growing downward; each slot is
//	              (offset uint16, length uint16); offset 0xFFFF marks a
//	              deleted slot.
//
// SlottedPage is a view over a page's bytes; it holds no state of its own,
// so multiple views of the same page stay coherent.
type SlottedPage struct {
	data []byte
}

const (
	slottedHeader = 4
	slotEntrySize = 4
	deadOffset    = 0xFFFF
)

// AsSlotted interprets a page as a slotted page. The page must have been
// initialized with InitSlotted (fresh zeroed pages are valid: zero slots,
// but a zero free pointer is normalized on first use).
func AsSlotted(data []byte) SlottedPage {
	if len(data) != PageSize {
		panic(fmt.Sprintf("storage: slotted page over %d bytes", len(data)))
	}
	return SlottedPage{data: data}
}

// InitSlotted formats a page as an empty slotted page.
func InitSlotted(data []byte) SlottedPage {
	p := AsSlotted(data)
	p.setNumSlots(0)
	p.setFreePtr(slottedHeader)
	return p
}

func (p SlottedPage) numSlots() int { return int(binary.LittleEndian.Uint16(p.data[0:2])) }
func (p SlottedPage) freePtr() int  { return int(binary.LittleEndian.Uint16(p.data[2:4])) }
func (p SlottedPage) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.data[0:2], uint16(n))
}
func (p SlottedPage) setFreePtr(n int) {
	binary.LittleEndian.PutUint16(p.data[2:4], uint16(n))
}

// NumSlots returns the slot count, including deleted slots.
func (p SlottedPage) NumSlots() int { return p.numSlots() }

func (p SlottedPage) slotPos(i int) int { return PageSize - (i+1)*slotEntrySize }

func (p SlottedPage) slot(i int) (off, ln int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.data[pos : pos+2])),
		int(binary.LittleEndian.Uint16(p.data[pos+2 : pos+4]))
}

func (p SlottedPage) setSlot(i, off, ln int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.data[pos:pos+2], uint16(off))
	binary.LittleEndian.PutUint16(p.data[pos+2:pos+4], uint16(ln))
}

// FreeSpace returns the bytes available for one more record (accounting for
// its slot directory entry). Never negative.
func (p SlottedPage) FreeSpace() int {
	free := p.slotPos(p.numSlots()) - p.freePtrNormalized() - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

func (p SlottedPage) freePtrNormalized() int {
	fp := p.freePtr()
	if fp < slottedHeader {
		fp = slottedHeader // fresh zeroed page
	}
	return fp
}

// Insert stores a record and returns its slot. Returns ok=false if the page
// lacks space. Records longer than the page payload are construction bugs
// and panic.
func (p SlottedPage) Insert(rec []byte) (Slot, bool) {
	if len(rec) > PageSize-slottedHeader-slotEntrySize {
		panic(fmt.Sprintf("storage: record of %d bytes cannot fit any page", len(rec)))
	}
	if len(rec) > p.FreeSpace() {
		return 0, false
	}
	fp := p.freePtrNormalized()
	n := p.numSlots()
	copy(p.data[fp:], rec)
	p.setSlot(n, fp, len(rec))
	p.setFreePtr(fp + len(rec))
	p.setNumSlots(n + 1)
	return Slot(n), true
}

// Get returns the record in the slot, or ok=false if the slot was deleted.
// Out-of-range slots panic (index corruption, not a data condition).
func (p SlottedPage) Get(s Slot) ([]byte, bool) {
	i := int(s)
	if i >= p.numSlots() {
		panic(fmt.Sprintf("storage: slot %d out of range (%d slots)", i, p.numSlots()))
	}
	off, ln := p.slot(i)
	if off == deadOffset {
		return nil, false
	}
	return p.data[off : off+ln], true
}

// Delete marks the slot dead. The cell space is not reclaimed (no compaction
// is needed for the read-mostly workloads of the experiments, and MVCC keeps
// dead versions addressable).
func (p SlottedPage) Delete(s Slot) {
	i := int(s)
	if i >= p.numSlots() {
		panic(fmt.Sprintf("storage: delete of slot %d out of range", i))
	}
	p.setSlot(i, deadOffset, 0)
}

// Update replaces the record in a slot. If the new record fits in the old
// cell it is updated in place; otherwise it is appended to the cell area
// (requiring free space) and the slot redirected. Returns ok=false if space
// is exhausted.
func (p SlottedPage) Update(s Slot, rec []byte) bool {
	i := int(s)
	if i >= p.numSlots() {
		panic(fmt.Sprintf("storage: update of slot %d out of range", i))
	}
	off, ln := p.slot(i)
	if off != deadOffset && len(rec) <= ln {
		copy(p.data[off:], rec)
		p.setSlot(i, off, len(rec))
		return true
	}
	// Need fresh space (no slot entry needed, only cell bytes).
	if len(rec) > p.slotPos(p.numSlots())-p.freePtrNormalized() {
		return false
	}
	fp := p.freePtrNormalized()
	copy(p.data[fp:], rec)
	p.setSlot(i, fp, len(rec))
	p.setFreePtr(fp + len(rec))
	return true
}
