package storage

import (
	"fmt"
	"time"

	"robustmap/internal/iomodel"
	"robustmap/internal/simclock"
)

// latchCost is the CPU charge for every buffer-pool access, hit or miss.
// It keeps pure-cache workloads from being free, matching the small but
// non-zero CPU floor visible at the left edge of the paper's Figure 1.
const latchCost = 250 * time.Nanosecond

// PoolStats counts buffer-pool activity.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Pins      int64
}

// frame is one buffer-pool slot.
type frame struct {
	file  FileID
	page  PageNo
	data  []byte
	pins  int
	ref   bool // clock reference bit
	dirty bool
	used  bool
}

// Pool is a buffer pool over a Disk. All page access in the engine goes
// through a Pool, which charges virtual time for misses via the Device and
// a small latch cost for every access.
//
// Pool is not safe for concurrent use: each query execution owns one
// engine instance (the paper runs queries serially).
type Pool struct {
	disk   *Disk
	dev    *iomodel.Device
	clock  *simclock.Clock
	frames []frame
	index  map[pageKey]int
	hand   int
	stats  PoolStats

	// One-entry lookup cache: fetch-heavy operators touch the same page
	// for Get and the immediately following Unpin (and often for runs of
	// consecutive rows), so remembering the last resolved frame skips a
	// map hash on the hot path. Purely an in-memory shortcut: hits still
	// count as pool hits and charge the latch cost.
	lastKey   pageKey
	lastFrame int
	haveLast  bool
}

// lookup resolves a page to its frame index, consulting the one-entry cache
// before the index map. It caches successful resolutions.
func (p *Pool) lookup(key pageKey) (int, bool) {
	if p.haveLast && p.lastKey == key {
		return p.lastFrame, true
	}
	fi, ok := p.index[key]
	if ok {
		p.lastKey, p.lastFrame, p.haveLast = key, fi, true
	}
	return fi, ok
}

type pageKey struct {
	file FileID
	page PageNo
}

// NewPool creates a pool of the given capacity in pages. Capacity must be
// at least 4 (a realistic pool always holds several pages: root, branch,
// leaf, data).
func NewPool(disk *Disk, dev *iomodel.Device, clock *simclock.Clock, capacity int) *Pool {
	if capacity < 4 {
		panic(fmt.Sprintf("storage: pool capacity %d < 4", capacity))
	}
	return &Pool{
		disk:   disk,
		dev:    dev,
		clock:  clock,
		frames: make([]frame, capacity),
		index:  make(map[pageKey]int, capacity),
	}
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return len(p.frames) }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() { p.stats = PoolStats{} }

// Disk exposes the underlying disk for file management.
func (p *Pool) Disk() *Disk { return p.disk }

// Device exposes the cost model device (for prefetch decisions).
func (p *Pool) Device() *iomodel.Device { return p.dev }

// Get pins the page and returns its bytes. The caller must Unpin it.
// A miss charges the device; a hit charges only the latch cost.
func (p *Pool) Get(file FileID, page PageNo) []byte {
	p.clock.Advance(simclock.AccountLatch, latchCost)
	key := pageKey{file, page}
	if fi, ok := p.lookup(key); ok {
		f := &p.frames[fi]
		f.pins++
		f.ref = true
		p.stats.Hits++
		p.stats.Pins++
		return f.data
	}
	p.stats.Misses++
	p.dev.ReadPage(uint32(file), int64(page))
	fi := p.evictAndClaim()
	f := &p.frames[fi]
	f.file, f.page = file, page
	f.data = p.disk.page(file, page)
	f.pins = 1
	f.ref = true
	f.dirty = false
	f.used = true
	p.index[key] = fi
	p.lastKey, p.lastFrame, p.haveLast = key, fi, true
	p.stats.Pins++
	return f.data
}

// Unpin releases a pin taken by Get. Unpinning a page that is not pinned
// panics: that is always an iterator lifecycle bug.
func (p *Pool) Unpin(file FileID, page PageNo) {
	fi, ok := p.lookup(pageKey{file, page})
	if !ok || p.frames[fi].pins == 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d:%d", file, page))
	}
	p.frames[fi].pins--
}

// MarkDirty records that the caller modified the page. Dirty pages charge a
// write when evicted (or flushed), pricing spill and build activity.
func (p *Pool) MarkDirty(file FileID, page PageNo) {
	fi, ok := p.lookup(pageKey{file, page})
	if !ok {
		panic(fmt.Sprintf("storage: MarkDirty of non-resident page %d:%d", file, page))
	}
	p.frames[fi].dirty = true
}

// Prefetch declares that the caller is about to read n consecutive pages
// starting at page. Pages already resident in the pool are skipped (real
// engines do not re-read cached pages); the remaining gaps are priced as
// sequential runs by the device, and the subsequent Get calls for them are
// free (already paid). Any read-ahead from a previous Prefetch of the same
// file that was never consumed is discarded first.
func (p *Pool) Prefetch(file FileID, page PageNo, n int) {
	if n <= 0 {
		return
	}
	p.dev.BeginReadAhead(uint32(file))
	runStart := PageNo(-1)
	flush := func(end PageNo) {
		if runStart >= 0 {
			p.dev.Prefetch(uint32(file), int64(runStart), int(end-runStart))
			runStart = -1
		}
	}
	for pg := page; pg < page+PageNo(n); pg++ {
		if p.Resident(file, pg) {
			flush(pg)
			continue
		}
		if runStart < 0 {
			runStart = pg
		}
	}
	flush(page + PageNo(n))
}

// PrefetchUnit returns the device's preferred prefetch size in pages.
func (p *Pool) PrefetchUnit() int { return p.dev.PrefetchUnit() }

// evictAndClaim finds a free frame, evicting with the clock algorithm if
// needed, and returns its index. Panics if every frame is pinned — a pool
// sized per NewPool's minimum cannot deadlock unless iterators leak pins.
func (p *Pool) evictAndClaim() int {
	for i := range p.frames {
		if !p.frames[i].used {
			return i
		}
	}
	for sweep := 0; sweep < 2*len(p.frames)+1; sweep++ {
		f := &p.frames[p.hand]
		i := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		p.evict(i)
		return i
	}
	panic("storage: all buffer-pool frames pinned")
}

func (p *Pool) evict(i int) {
	f := &p.frames[i]
	if f.dirty {
		// Write-back: the disk already shares the backing array, so only
		// the cost is charged.
		p.dev.WritePage(uint32(f.file), int64(f.page))
	}
	if p.haveLast && p.lastKey == (pageKey{f.file, f.page}) {
		p.haveLast = false
	}
	delete(p.index, pageKey{f.file, f.page})
	p.stats.Evictions++
	*f = frame{}
}

// FlushAll writes back every dirty page and empties the pool. Panics if any
// page is still pinned. Used between experiment runs to return the engine
// to a cold state.
func (p *Pool) FlushAll() {
	for i := range p.frames {
		f := &p.frames[i]
		if !f.used {
			continue
		}
		if f.pins > 0 {
			panic(fmt.Sprintf("storage: FlushAll with pinned page %d:%d", f.file, f.page))
		}
		p.evict(i)
	}
	p.hand = 0
}

// Resident reports whether a page is currently cached (for tests).
func (p *Pool) Resident(file FileID, page PageNo) bool {
	_, ok := p.index[pageKey{file, page}]
	return ok
}
