// Package mapdiff compares two finished robustness-map results — the
// primitive behind `robustmap diff` and the CI regression gate. It
// answers the question the paper's maps exist to answer continuously:
// did an engine change move a plan-choice boundary, shift a landmark,
// or change the optimizer's regret anywhere on the map?
//
// The comparison is structural, not textual: plan lists, sweep axes,
// winner grids, result-size grids, per-plan times, §3.1 landmarks, and
// regret overlays are each diffed on their own terms, so the report
// names what drifted ("winner at (3,5): A1 -> B2") instead of dumping
// JSON deltas. Byte-identical inputs — the determinism contract of the
// whole engine — produce an empty report.
package mapdiff

import (
	"encoding/json"
	"fmt"
	"os"

	"robustmap/internal/mapstore"
	"robustmap/internal/service"
)

// maxExamples caps how many per-cell examples a section lists; the
// count is always exact.
const maxExamples = 5

// Section is one comparison dimension's findings.
type Section struct {
	Name  string   `json:"name"`
	Diffs []string `json:"diffs"`
}

// Report is the structured outcome of one comparison. An empty report
// (no sections) means the maps are equivalent on every compared
// dimension.
type Report struct {
	Sections []Section `json:"sections"`
}

// Identical reports whether no dimension differed.
func (r *Report) Identical() bool { return len(r.Sections) == 0 }

// Lines renders the report for humans, one finding per line.
func (r *Report) Lines() []string {
	var out []string
	for _, s := range r.Sections {
		for _, d := range s.Diffs {
			out = append(out, s.Name+": "+d)
		}
	}
	return out
}

func (r *Report) add(name string, diffs []string) {
	if len(diffs) > 0 {
		r.Sections = append(r.Sections, Section{Name: name, Diffs: diffs})
	}
}

// LoadFile reads one map result from path: either a mapstore envelope
// (as written under a store's maps/ directory — verified, payload
// extracted) or a bare service.Result JSON (as `sweep -json` and the
// CLIs emit). The returned envelope is nil for bare results.
func LoadFile(path string) (*service.Result, *mapstore.Envelope, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	// An envelope is recognized by its hash field; anything else is
	// treated as a bare result. Envelope verification (format, payload
	// hash) runs through the store's own reader.
	var probe struct {
		PayloadSHA256 string `json:"payload_sha256"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, nil, fmt.Errorf("%s: not JSON: %w", path, err)
	}
	payload := b
	var env *mapstore.Envelope
	if probe.PayloadSHA256 != "" {
		env, err = mapstore.ReadEnvelopeFile(path)
		if err != nil {
			return nil, nil, err
		}
		payload = env.Payload
	}
	res := &service.Result{}
	if err := json.Unmarshal(payload, res); err != nil {
		return nil, nil, fmt.Errorf("%s: decoding result: %w", path, err)
	}
	if res.Map1D == nil && res.Map2D == nil {
		return nil, nil, fmt.Errorf("%s: no map in result", path)
	}
	return res, env, nil
}

// Compare diffs two results dimension by dimension.
func Compare(a, b *service.Result) *Report {
	r := &Report{}
	r.add("shape", diffShape(a, b))
	if a.Map1D != nil && b.Map1D != nil {
		compare1D(r, a.Map1D, b.Map1D)
	}
	if a.Map2D != nil && b.Map2D != nil {
		compare2D(r, a.Map2D, b.Map2D)
	}
	r.add("candidates", diffCandidates(a.Candidates, b.Candidates))
	if a.Regret1D != nil && b.Regret1D != nil {
		r.add("regret", diffRegret1D(a.Regret1D, b.Regret1D))
	}
	if a.Regret2D != nil && b.Regret2D != nil {
		r.add("regret", diffRegret2D(a.Regret2D, b.Regret2D))
	}
	return r
}

// diffShape reports result components present on one side only.
func diffShape(a, b *service.Result) []string {
	var out []string
	present := func(name string, inA, inB bool) {
		switch {
		case inA && !inB:
			out = append(out, name+" only in A")
		case !inA && inB:
			out = append(out, name+" only in B")
		}
	}
	present("map_1d", a.Map1D != nil, b.Map1D != nil)
	present("map_2d", a.Map2D != nil, b.Map2D != nil)
	present("regret_1d", a.Regret1D != nil, b.Regret1D != nil)
	present("regret_2d", a.Regret2D != nil, b.Regret2D != nil)
	present("candidates", len(a.Candidates) > 0, len(b.Candidates) > 0)
	return out
}

// diffPlans reports plan-list membership changes and returns the shared
// ids in A's order — deeper comparisons run over the intersection, so a
// deliberately extended plan set still gets its unchanged plans
// verified.
func diffPlans(r *Report, aPlans, bPlans []string) []string {
	inB := make(map[string]bool, len(bPlans))
	for _, p := range bPlans {
		inB[p] = true
	}
	inA := make(map[string]bool, len(aPlans))
	var shared, diffs []string
	for _, p := range aPlans {
		inA[p] = true
		if inB[p] {
			shared = append(shared, p)
		} else {
			diffs = append(diffs, "only in A: "+p)
		}
	}
	for _, p := range bPlans {
		if !inA[p] {
			diffs = append(diffs, "only in B: "+p)
		}
	}
	r.add("plans", diffs)
	return shared
}

func diffAxisF(name string, a, b []float64) []string {
	if len(a) != len(b) {
		return []string{fmt.Sprintf("%s length %d vs %d", name, len(a), len(b))}
	}
	for i := range a {
		if a[i] != b[i] {
			return []string{fmt.Sprintf("%s[%d] = %g vs %g", name, i, a[i], b[i])}
		}
	}
	return nil
}

func diffAxisI(name string, a, b []int64) []string {
	if len(a) != len(b) {
		return []string{fmt.Sprintf("%s length %d vs %d", name, len(a), len(b))}
	}
	for i := range a {
		if a[i] != b[i] {
			return []string{fmt.Sprintf("%s[%d] = %d vs %d", name, i, a[i], b[i])}
		}
	}
	return nil
}

// capped appends example to diffs only while under the example cap;
// callers report exact counts separately.
func capped(diffs []string, example string) []string {
	if len(diffs) < maxExamples {
		diffs = append(diffs, example)
	}
	return diffs
}

func withCount(diffs []string, n int, what string) []string {
	if n > len(diffs) {
		diffs = append(diffs, fmt.Sprintf("... %d %s differ in total", n, what))
	}
	return diffs
}
