package mapdiff

import (
	"fmt"
	"time"

	"robustmap/internal/core"
)

// compare1D diffs two 1-D maps: axis, rows, per-plan times, winners,
// and §3.1 landmarks over the shared plans.
func compare1D(r *Report, a, b *core.Map1D) {
	shared := diffPlans(r, a.Plans, b.Plans)
	axis := append(diffAxisF("fractions", a.Fractions, b.Fractions),
		diffAxisI("thresholds", a.Thresholds, b.Thresholds)...)
	r.add("axis", axis)
	if len(axis) > 0 {
		// Different axes measure different points; per-cell comparison
		// would be noise.
		r.add("axis", []string{"(grid comparisons skipped: axes differ)"})
		return
	}

	if !grids1DConsistent(r, a, b, shared) {
		return
	}

	var rows []string
	n := 0
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			n++
			rows = capped(rows, fmt.Sprintf("rows[%d] = %d vs %d", i, a.Rows[i], b.Rows[i]))
		}
	}
	r.add("rows-grid", withCount(rows, n, "points"))

	var times []string
	for _, id := range shared {
		sa, sb := a.Series(id), b.Series(id)
		n, worst, worstAt := 0, 1.0, -1
		for i := range sa {
			if sa[i] != sb[i] {
				n++
				if q := ratio(sa[i], sb[i]); worstAt == -1 || q > worst {
					worst, worstAt = q, i
				}
			}
		}
		if n > 0 {
			times = append(times, fmt.Sprintf(
				"%s: %d/%d points differ, worst ratio %.3gx at point %d (%v vs %v)",
				id, n, len(sa), worst, worstAt, sa[worstAt], sb[worstAt]))
		}
	}
	r.add("times", times)

	// Winners over the shared plan pool, in shared order on both sides.
	if len(shared) > 0 {
		wa, wb := winners1D(a, shared), winners1D(b, shared)
		var diffs []string
		n := 0
		for i := range wa {
			if wa[i] != wb[i] {
				n++
				diffs = capped(diffs, fmt.Sprintf("point %d: %s -> %s",
					i, shared[wa[i]], shared[wb[i]]))
			}
		}
		r.add("winner-grid", withCount(diffs, n, "points"))
		r.add("landmarks", diffLandmarks1D(a, b, shared))
	}
}

// winners1D computes per-point winner indices over the given plan pool.
func winners1D(m *core.Map1D, pool []string) []int {
	series := make([][]time.Duration, len(pool))
	for i, id := range pool {
		series[i] = m.Series(id)
	}
	out := make([]int, len(m.Thresholds))
	for i := range out {
		w := 0
		for p := 1; p < len(series); p++ {
			if series[p][i] < series[w][i] {
				w = p
			}
		}
		out[i] = w
	}
	return out
}

// diffLandmarks1D compares the §3.1 landmark sets per shared plan,
// keyed by (kind, index) — Detail magnitudes may drift harmlessly, but
// a landmark appearing, vanishing, or moving is a robustness event.
func diffLandmarks1D(a, b *core.Map1D, shared []string) []string {
	cfg := core.MapLandmarkConfig()
	var out []string
	for _, id := range shared {
		la := core.FindLandmarks(a.Rows, a.Series(id), cfg)
		lb := core.FindLandmarks(b.Rows, b.Series(id), cfg)
		keys := func(ls []core.Landmark) map[string]bool {
			m := make(map[string]bool, len(ls))
			for _, l := range ls {
				m[fmt.Sprintf("%v@%d", l.Kind, l.Index)] = true
			}
			return m
		}
		ka, kb := keys(la), keys(lb)
		for k := range ka {
			if !kb[k] {
				out = append(out, fmt.Sprintf("%s: %s only in A", id, k))
			}
		}
		for k := range kb {
			if !ka[k] {
				out = append(out, fmt.Sprintf("%s: %s only in B", id, k))
			}
		}
	}
	return out
}

// compare2D diffs two 2-D maps: axes, rows grid, per-plan time grids,
// the winner grid (the paper's region boundaries), and the landmark
// grid, over the shared plans.
func compare2D(r *Report, a, b *core.Map2D) {
	shared := diffPlans(r, a.Plans, b.Plans)
	var axis []string
	axis = append(axis, diffAxisF("frac_a", a.FracA, b.FracA)...)
	axis = append(axis, diffAxisF("frac_b", a.FracB, b.FracB)...)
	axis = append(axis, diffAxisI("ta", a.TA, b.TA)...)
	axis = append(axis, diffAxisI("tb", a.TB, b.TB)...)
	r.add("axis", axis)
	if len(axis) > 0 {
		r.add("axis", []string{"(grid comparisons skipped: axes differ)"})
		return
	}

	if !grids2DConsistent(r, a, b, shared) {
		return
	}

	var rows []string
	n := 0
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				n++
				rows = capped(rows, fmt.Sprintf("rows(%d,%d) = %d vs %d",
					i, j, a.Rows[i][j], b.Rows[i][j]))
			}
		}
	}
	r.add("rows-grid", withCount(rows, n, "cells"))

	var times []string
	for _, id := range shared {
		ga, gb := a.PlanGrid(id), b.PlanGrid(id)
		n, worst := 0, 1.0
		worstI, worstJ := -1, -1
		for i := range ga {
			for j := range ga[i] {
				if ga[i][j] != gb[i][j] {
					n++
					if q := ratio(ga[i][j], gb[i][j]); worstI == -1 || q > worst {
						worst, worstI, worstJ = q, i, j
					}
				}
			}
		}
		if n > 0 {
			times = append(times, fmt.Sprintf(
				"%s: %d/%d cells differ, worst ratio %.3gx at (%d,%d) (%v vs %v)",
				id, n, len(ga)*len(ga[0]), worst, worstI, worstJ,
				ga[worstI][worstJ], gb[worstI][worstJ]))
		}
	}
	r.add("times", times)

	if len(shared) > 0 {
		sa, sb := a.SubMap(shared), b.SubMap(shared)
		wa, wb := sa.WinnerGrid(), sb.WinnerGrid()
		var diffs []string
		n := 0
		for i := range wa {
			for j := range wa[i] {
				if wa[i][j] != wb[i][j] {
					n++
					diffs = capped(diffs, fmt.Sprintf("(%d,%d): %s -> %s",
						i, j, shared[wa[i][j]], shared[wb[i][j]]))
				}
			}
		}
		r.add("winner-grid", withCount(diffs, n, "cells"))
		r.add("landmarks", diffLandmarks2D(sa, sb, shared))
	}
}

// diffLandmarks2D compares LandmarkGrid sets per shared plan, keyed by
// (plan, axis, fixed, kind, index).
func diffLandmarks2D(a, b *core.Map2D, shared []string) []string {
	cfg := core.MapLandmarkConfig()
	var out []string
	for _, id := range shared {
		keys := func(ls []core.GridLandmark) map[string]bool {
			m := make(map[string]bool, len(ls))
			for _, l := range ls {
				m[fmt.Sprintf("axis%d/slice%d %v@%d", l.Axis, l.Fixed, l.Kind, l.Index)] = true
			}
			return m
		}
		ka, kb := keys(a.LandmarkGrid(id, cfg)), keys(b.LandmarkGrid(id, cfg))
		for k := range ka {
			if !kb[k] {
				out = append(out, fmt.Sprintf("%s: %s only in A", id, k))
			}
		}
		for k := range kb {
			if !ka[k] {
				out = append(out, fmt.Sprintf("%s: %s only in B", id, k))
			}
		}
	}
	return out
}

// grids1DConsistent verifies each side's grids match its axes: len(Rows)
// and every shared plan's series must equal len(Thresholds). A sweep
// always satisfies this, but `robustmap diff` also accepts hand-edited
// or truncated bare-result JSON; report the bad shape instead of
// indexing past the end of a short slice.
func grids1DConsistent(r *Report, a, b *core.Map1D, shared []string) bool {
	var out []string
	check := func(side string, m *core.Map1D) {
		want := len(m.Thresholds)
		if len(m.Rows) != want {
			out = append(out, fmt.Sprintf("%s: %d rows for %d thresholds", side, len(m.Rows), want))
		}
		for _, id := range shared {
			if n := len(m.Series(id)); n != want {
				out = append(out, fmt.Sprintf("%s: plan %s has %d points for %d thresholds", side, id, n, want))
			}
		}
	}
	check("A", a)
	check("B", b)
	if len(out) > 0 {
		r.add("shape", append(out, "(grid comparisons skipped: grids do not match axes)"))
		return false
	}
	return true
}

// grids2DConsistent is grids1DConsistent for 2-D maps: Rows and every
// shared plan grid must be len(TA) x len(TB) on both sides.
func grids2DConsistent(r *Report, a, b *core.Map2D, shared []string) bool {
	var out []string
	check := func(side string, m *core.Map2D) {
		if !gridIs(m.Rows, len(m.TA), len(m.TB)) {
			out = append(out, fmt.Sprintf("%s: rows grid is not %dx%d", side, len(m.TA), len(m.TB)))
		}
		for _, id := range shared {
			if !gridIs(m.PlanGrid(id), len(m.TA), len(m.TB)) {
				out = append(out, fmt.Sprintf("%s: plan %s grid is not %dx%d", side, id, len(m.TA), len(m.TB)))
			}
		}
	}
	check("A", a)
	check("B", b)
	if len(out) > 0 {
		r.add("shape", append(out, "(grid comparisons skipped: grids do not match axes)"))
		return false
	}
	return true
}

// gridIs reports whether g is a full rows x cols grid.
func gridIs[T any](g [][]T, rows, cols int) bool {
	if len(g) != rows {
		return false
	}
	for _, row := range g {
		if len(row) != cols {
			return false
		}
	}
	return true
}

// ratio is the larger-over-smaller quotient of two durations, ≥ 1, for
// "how badly do these disagree" reporting.
func ratio(x, y time.Duration) float64 {
	if x < y {
		x, y = y, x
	}
	if y <= 0 {
		return float64(x) // degenerate; still orders worst-first
	}
	return float64(x) / float64(y)
}
