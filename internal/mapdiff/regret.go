package mapdiff

import (
	"fmt"

	"robustmap/internal/core"
	"robustmap/internal/service"
)

// diffCandidates compares the optimizer's enumerated plan lists by id.
func diffCandidates(a, b []service.CandidateInfo) []string {
	ids := func(cs []service.CandidateInfo) map[string]bool {
		m := make(map[string]bool, len(cs))
		for _, c := range cs {
			m[c.ID] = true
		}
		return m
	}
	ia, ib := ids(a), ids(b)
	var out []string
	for _, c := range a {
		if !ib[c.ID] {
			out = append(out, "only in A: "+c.ID)
		}
	}
	for _, c := range b {
		if !ia[c.ID] {
			out = append(out, "only in B: "+c.ID)
		}
	}
	return out
}

// pickName resolves a pick index to its plan id (-1 is "none").
func pickName(plans []string, idx int) string {
	if idx < 0 {
		return "(none)"
	}
	if idx < len(plans) {
		return plans[idx]
	}
	return fmt.Sprintf("#%d", idx)
}

// diffRegret1D compares the optimizer's pick vector and regret overlay.
// Picks are compared by plan id, not index, so a re-ordered candidate
// list with identical decisions stays clean.
func diffRegret1D(a, b *core.RegretMap1D) []string {
	var out []string
	if a.Threshold != b.Threshold {
		out = append(out, fmt.Sprintf("threshold %g vs %g", a.Threshold, b.Threshold))
	}
	if len(a.Picks) != len(b.Picks) {
		return append(out, fmt.Sprintf("picks length %d vs %d", len(a.Picks), len(b.Picks)))
	}
	picks, regret, robust := 0, 0, 0
	var ex []string
	for i := range a.Picks {
		pa, pb := pickName(a.Plans, a.Picks[i]), pickName(b.Plans, b.Picks[i])
		if pa != pb {
			picks++
			ex = capped(ex, fmt.Sprintf("pick at point %d: %s -> %s", i, pa, pb))
		}
		if a.Regret[i] != b.Regret[i] {
			regret++
		}
		if a.NonRobust[i] != b.NonRobust[i] {
			robust++
		}
	}
	out = append(out, ex...)
	if picks > len(ex) {
		out = append(out, fmt.Sprintf("... %d picks differ in total", picks))
	}
	if regret > 0 {
		out = append(out, fmt.Sprintf("%d regret values differ", regret))
	}
	if robust > 0 {
		out = append(out, fmt.Sprintf("%d non-robust flags differ", robust))
	}
	return out
}

// diffRegret2D is the grid counterpart of diffRegret1D.
func diffRegret2D(a, b *core.RegretMap2D) []string {
	var out []string
	if a.Threshold != b.Threshold {
		out = append(out, fmt.Sprintf("threshold %g vs %g", a.Threshold, b.Threshold))
	}
	if len(a.Picks) != len(b.Picks) || (len(a.Picks) > 0 && len(a.Picks[0]) != len(b.Picks[0])) {
		return append(out, fmt.Sprintf("picks shape %dx%d vs %dx%d",
			len(a.Picks), dim2(a.Picks), len(b.Picks), dim2(b.Picks)))
	}
	picks, regret, robust := 0, 0, 0
	var ex []string
	for i := range a.Picks {
		for j := range a.Picks[i] {
			pa, pb := pickName(a.Plans, a.Picks[i][j]), pickName(b.Plans, b.Picks[i][j])
			if pa != pb {
				picks++
				ex = capped(ex, fmt.Sprintf("pick at (%d,%d): %s -> %s", i, j, pa, pb))
			}
			if a.Regret[i][j] != b.Regret[i][j] {
				regret++
			}
			if a.NonRobust[i][j] != b.NonRobust[i][j] {
				robust++
			}
		}
	}
	out = append(out, ex...)
	if picks > len(ex) {
		out = append(out, fmt.Sprintf("... %d picks differ in total", picks))
	}
	if regret > 0 {
		out = append(out, fmt.Sprintf("%d regret values differ", regret))
	}
	if robust > 0 {
		out = append(out, fmt.Sprintf("%d non-robust flags differ", robust))
	}
	return out
}

func dim2[T any](g [][]T) int {
	if len(g) == 0 {
		return 0
	}
	return len(g[0])
}
