package mapdiff

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/mapstore"
	"robustmap/internal/service"
)

// testMap2D builds a small deterministic 2-D map: plan p's time grows
// with (i+1)*(j+1) scaled per plan, so plan 0 wins everywhere.
func testMap2D(plans ...string) *core.Map2D {
	n := 4
	m := &core.Map2D{
		FracA: []float64{0.125, 0.25, 0.5, 1},
		FracB: []float64{0.125, 0.25, 0.5, 1},
		TA:    []int64{16, 32, 64, 128},
		TB:    []int64{16, 32, 64, 128},
		Plans: plans,
	}
	m.Rows = make([][]int64, n)
	for i := range m.Rows {
		m.Rows[i] = make([]int64, n)
		for j := range m.Rows[i] {
			m.Rows[i][j] = int64((i + 1) * (j + 1))
		}
	}
	for p := range plans {
		grid := make([][]time.Duration, n)
		for i := range grid {
			grid[i] = make([]time.Duration, n)
			for j := range grid[i] {
				// Milliseconds, so perturbations clear MapLandmarkConfig's
				// 1ms minimum step and register as landmarks.
				grid[i][j] = time.Duration((p+1)*(i+1)*(j+1)) * time.Millisecond
			}
		}
		m.Times = append(m.Times, grid)
	}
	return m
}

func clone2D(t *testing.T, m *core.Map2D) *core.Map2D {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	out := &core.Map2D{}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIdenticalMapsProduceEmptyReport(t *testing.T) {
	a := &service.Result{Map2D: testMap2D("P1", "P2")}
	b := &service.Result{Map2D: testMap2D("P1", "P2")}
	r := Compare(a, b)
	if !r.Identical() {
		t.Fatalf("identical maps differ: %v", r.Lines())
	}
}

func TestWinnerFlipIsReported(t *testing.T) {
	a := &service.Result{Map2D: testMap2D("P1", "P2")}
	m := testMap2D("P1", "P2")
	// Make P2 win cell (1,2): drop its time below P1's there.
	m.Times[1][1][2] = time.Nanosecond
	b := &service.Result{Map2D: m}
	r := Compare(a, b)
	if r.Identical() {
		t.Fatal("perturbed map reported identical")
	}
	report := strings.Join(r.Lines(), "\n")
	if !strings.Contains(report, "winner-grid: (1,2): P1 -> P2") {
		t.Fatalf("winner flip not named:\n%s", report)
	}
	if !strings.Contains(report, "times: P2:") {
		t.Fatalf("time delta not attributed to P2:\n%s", report)
	}
}

func TestRowsGridDrift(t *testing.T) {
	a := &service.Result{Map2D: testMap2D("P1")}
	m := testMap2D("P1")
	m.Rows[2][3] += 5
	r := Compare(a, &service.Result{Map2D: m})
	if got := strings.Join(r.Lines(), "\n"); !strings.Contains(got, "rows-grid: rows(2,3) = 12 vs 17") {
		t.Fatalf("rows drift not reported:\n%s", got)
	}
}

func TestPlanListChangesCompareIntersection(t *testing.T) {
	a := &service.Result{Map2D: testMap2D("P1", "P2")}
	b := &service.Result{Map2D: testMap2D("P1", "P2", "P3")}
	r := Compare(a, b)
	report := strings.Join(r.Lines(), "\n")
	if !strings.Contains(report, "plans: only in B: P3") {
		t.Fatalf("added plan not reported:\n%s", report)
	}
	// The shared plans are identical, so nothing else may fire.
	for _, line := range r.Lines() {
		if !strings.HasPrefix(line, "plans:") {
			t.Fatalf("unexpected diff beyond plan membership: %q", line)
		}
	}
}

func TestAxisMismatchSkipsGrids(t *testing.T) {
	a := &service.Result{Map2D: testMap2D("P1")}
	m := testMap2D("P1")
	m.TA = []int64{1, 2, 3, 4}
	r := Compare(a, &service.Result{Map2D: m})
	report := strings.Join(r.Lines(), "\n")
	if !strings.Contains(report, "axis: ta[0] = 16 vs 1") {
		t.Fatalf("axis change not reported:\n%s", report)
	}
	if strings.Contains(report, "winner-grid") || strings.Contains(report, "times:") {
		t.Fatalf("grid comparison ran across different axes:\n%s", report)
	}
}

func TestLandmarkDrift(t *testing.T) {
	a := &service.Result{Map2D: testMap2D("P1")}
	m := testMap2D("P1")
	// A non-monotonic spike: more rows, radically cheaper — §3.1's first
	// landmark kind on the row-0 slice.
	m.Times[0][0][3] = time.Nanosecond
	r := Compare(a, &service.Result{Map2D: m})
	report := strings.Join(r.Lines(), "\n")
	if !strings.Contains(report, "landmarks: P1:") || !strings.Contains(report, "only in B") {
		t.Fatalf("landmark appearance not reported:\n%s", report)
	}
}

func Test1DComparison(t *testing.T) {
	mk := func() *core.Map1D {
		return &core.Map1D{
			Fractions:  []float64{0.25, 0.5, 1},
			Thresholds: []int64{32, 64, 128},
			Plans:      []string{"P1", "P2"},
			Times: [][]time.Duration{
				{1 * time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond},
				{2 * time.Microsecond, 3 * time.Microsecond, 4 * time.Microsecond},
			},
			Rows: []int64{1, 2, 3},
		}
	}
	if r := Compare(&service.Result{Map1D: mk()}, &service.Result{Map1D: mk()}); !r.Identical() {
		t.Fatalf("identical 1-D maps differ: %v", r.Lines())
	}
	m := mk()
	m.Times[1][2] = time.Nanosecond // P2 takes point 2
	r := Compare(&service.Result{Map1D: mk()}, &service.Result{Map1D: m})
	report := strings.Join(r.Lines(), "\n")
	if !strings.Contains(report, "winner-grid: point 2: P1 -> P2") {
		t.Fatalf("1-D winner flip not reported:\n%s", report)
	}
}

func TestRegretComparison(t *testing.T) {
	mk := func() *core.RegretMap2D {
		return &core.RegretMap2D{
			FracA: []float64{0.5, 1}, FracB: []float64{0.5, 1},
			TA: []int64{64, 128}, TB: []int64{64, 128},
			Plans:     []string{"cand-0", "cand-1"},
			Picks:     [][]int{{0, 0}, {1, 0}},
			Regret:    [][]float64{{1, 1}, {1.5, 1}},
			NonRobust: [][]bool{{false, false}, {true, false}},
			Threshold: 2,
		}
	}
	a := &service.Result{Map2D: testMap2D("P1"), Regret2D: mk()}
	b := &service.Result{Map2D: testMap2D("P1"), Regret2D: mk()}
	if r := Compare(a, b); !r.Identical() {
		t.Fatalf("identical regret maps differ: %v", r.Lines())
	}
	m := mk()
	m.Picks[0][1] = 1
	m.NonRobust[0][1] = true
	r := Compare(a, &service.Result{Map2D: testMap2D("P1"), Regret2D: m})
	report := strings.Join(r.Lines(), "\n")
	if !strings.Contains(report, "regret: pick at (0,1): cand-0 -> cand-1") {
		t.Fatalf("pick flip not reported:\n%s", report)
	}
	if !strings.Contains(report, "1 non-robust flags differ") {
		t.Fatalf("non-robust drift not reported:\n%s", report)
	}
}

func TestShapeMismatch(t *testing.T) {
	a := &service.Result{Map2D: testMap2D("P1")}
	b := &service.Result{Map1D: &core.Map1D{
		Fractions: []float64{1}, Thresholds: []int64{1},
		Plans: []string{"P1"}, Times: [][]time.Duration{{1}}, Rows: []int64{1},
	}}
	r := Compare(a, b)
	report := strings.Join(r.Lines(), "\n")
	if !strings.Contains(report, "shape: map_1d only in B") ||
		!strings.Contains(report, "shape: map_2d only in A") {
		t.Fatalf("shape mismatch not reported:\n%s", report)
	}
}

// TestTruncatedGridsReportShape pins the error contract for hand-edited
// or truncated bare-result JSON — a documented input of `robustmap
// diff`: grids shorter than the axes must surface as a shape finding,
// never as an index panic.
func TestTruncatedGridsReportShape(t *testing.T) {
	t.Run("2d", func(t *testing.T) {
		m := testMap2D("P1", "P2")
		m.Times[1][2] = m.Times[1][2][:2] // one short grid row
		m.Rows = m.Rows[:3]               // and a short rows grid
		r := Compare(&service.Result{Map2D: testMap2D("P1", "P2")}, &service.Result{Map2D: m})
		report := strings.Join(r.Lines(), "\n")
		if !strings.Contains(report, "shape: B: plan P2 grid is not 4x4") ||
			!strings.Contains(report, "shape: B: rows grid is not 4x4") {
			t.Fatalf("truncated 2-D grids not reported as shape:\n%s", report)
		}
		if strings.Contains(report, "winner-grid") || strings.Contains(report, "times:") {
			t.Fatalf("grid comparison ran over truncated grids:\n%s", report)
		}
	})
	t.Run("1d", func(t *testing.T) {
		mk := func() *core.Map1D {
			return &core.Map1D{
				Fractions:  []float64{0.25, 0.5, 1},
				Thresholds: []int64{32, 64, 128},
				Plans:      []string{"P1"},
				Times:      [][]time.Duration{{1, 2, 3}},
				Rows:       []int64{1, 2, 3},
			}
		}
		m := mk()
		m.Times[0] = m.Times[0][:1]
		m.Rows = m.Rows[:2]
		r := Compare(&service.Result{Map1D: mk()}, &service.Result{Map1D: m})
		report := strings.Join(r.Lines(), "\n")
		if !strings.Contains(report, "shape: B: plan P1 has 1 points for 3 thresholds") ||
			!strings.Contains(report, "shape: B: 2 rows for 3 thresholds") {
			t.Fatalf("truncated 1-D grids not reported as shape:\n%s", report)
		}
		if strings.Contains(report, "winner-grid") || strings.Contains(report, "times:") {
			t.Fatalf("grid comparison ran over truncated series:\n%s", report)
		}
	})
}

// TestLoadFile covers both on-disk forms: a bare Result and a store
// envelope, which must load to the same comparison input.
func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	res := &service.Result{Map2D: testMap2D("P1", "P2")}
	payload, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(bare, payload, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := mapstore.Open(filepath.Join(dir, "store"),
		mapstore.Config{EngineVersion: "diff-test", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	key := "00112233445566778899aabbccddeeff"
	st.PutMap(key, mapstore.Scope{Kind: "plans", Plans: []string{"P1", "P2"}}, payload)
	st.Close()

	fromBare, env, err := LoadFile(bare)
	if err != nil {
		t.Fatalf("LoadFile(bare): %v", err)
	}
	if env != nil {
		t.Fatal("bare result came back with an envelope")
	}
	fromEnv, env, err := LoadFile(filepath.Join(dir, "store", "maps", key+".json"))
	if err != nil {
		t.Fatalf("LoadFile(envelope): %v", err)
	}
	if env == nil || env.Scope.Kind != "plans" {
		t.Fatalf("envelope metadata missing: %+v", env)
	}
	if r := Compare(fromBare, fromEnv); !r.Identical() {
		t.Fatalf("same payload loaded differently: %v", r.Lines())
	}

	if _, _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	junk := filepath.Join(dir, "junk.json")
	os.WriteFile(junk, []byte("not json"), 0o644)
	if _, _, err := LoadFile(junk); err == nil {
		t.Fatal("junk file loaded")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("{}"), 0o644)
	if _, _, err := LoadFile(empty); err == nil {
		t.Fatal("mapless result loaded")
	}
}
