package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"robustmap/internal/exec"
	"robustmap/internal/record"
	"robustmap/internal/vis"
)

// MemSweep maps execution cost against available memory — the resource
// dimension of the paper's abstract ("actual available memory" vs
// "anticipated memory availability") and §3.2's parameter list ("resource
// availability such as memory"). The workload is fixed; only the memory
// budget varies, from a quarter of the working set to four times it.
//
// The map shows how gracefully each algorithm degrades when it receives
// less memory than the optimizer anticipated:
//
//   - graceful-spill sort: cost rises smoothly as memory shrinks,
//   - degenerate-spill sort: a cliff appears the moment memory drops
//     below the input size,
//   - grace hash join: a cliff (one full partitioning round trip), then
//     flat — more memory below the cliff does not help,
//   - nested-loop join: perfectly flat (memory-oblivious) but slow.
func MemSweep(s *Study) *Artifacts {
	schema := record.NewSchema(
		record.Column{Name: "k", Type: record.TypeInt64},
		record.Column{Name: "pad", Type: record.TypeString},
	)
	pad := record.String_(string(make([]byte, 100)))
	rowBytes := int64(schema.EncodedSizeEstimate())
	const dataRows = 12000
	dataBytes := dataRows * rowBytes

	mkRows := func(n int64, seed int64) []exec.Row {
		r := rand.New(rand.NewSource(seed))
		rows := make([]exec.Row, n)
		for i := range rows {
			rows[i] = exec.Row{record.Int(int64(r.Intn(int(n)))), pad}
		}
		return rows
	}

	sortCost := func(mem int64, pol exec.SpillPolicy) time.Duration {
		ctx := freshOpCtx(s.Cfg.Engine.IO, mem)
		exec.Drain(exec.NewSort(ctx, &exec.SliceRows{Rows: mkRows(dataRows, 3)},
			schema, []int{0}, pol))
		return ctx.Clock.Now()
	}
	hashJoinCost := func(mem int64) time.Duration {
		ctx := freshOpCtx(s.Cfg.Engine.IO, mem)
		j := exec.NewHashJoinRows(ctx,
			&exec.SliceRows{Rows: mkRows(dataRows, 3)},
			&exec.SliceRows{Rows: mkRows(dataRows/2, 5)},
			schema, schema, []int{0}, []int{0})
		exec.Drain(j)
		return ctx.Clock.Now()
	}

	// Memory fractions of the working set, ascending (the x axis reads
	// "more memory to the right", so robustness shows as flatness toward
	// the LEFT edge — degradation under memory pressure).
	fractions := []float64{0.25, 0.5, 0.75, 0.95, 1.05, 1.5, 2, 4}
	budgets := make([]int64, len(fractions))
	for i, f := range fractions {
		budgets[i] = int64(f * float64(dataBytes))
	}

	graceful := make([]time.Duration, len(budgets))
	degenerate := make([]time.Duration, len(budgets))
	hashJoin := make([]time.Duration, len(budgets))
	for i, mem := range budgets {
		graceful[i] = sortCost(mem, exec.PolicyGraceful)
		degenerate[i] = sortCost(mem, exec.PolicyDegenerate)
		hashJoin[i] = hashJoinCost(mem)
	}

	monotone := func(ts []time.Duration) bool {
		for i := 1; i < len(ts); i++ {
			if float64(ts[i]) > float64(ts[i-1])*1.05 {
				return false // more memory must not cost (much) more
			}
		}
		return true
	}
	// Cliff detection across the 0.95 -> 1.05 boundary (indices 3, 4),
	// read in the direction of SHRINKING memory.
	degCliff := float64(degenerate[3]) / float64(degenerate[4])
	grCliff := float64(graceful[3]) / float64(graceful[4])

	checks := []Check{
		{
			Claim: "more memory never hurts (all curves monotone non-increasing in memory)",
			Pass:  monotone(graceful) && monotone(degenerate) && monotone(hashJoin),
			Got:   "verified across the sweep",
		},
		{
			Claim: "the degenerate sort cliffs when memory drops below the input size",
			Pass:  degCliff > 2,
			Got:   fmt.Sprintf("cost grows %.1fx across the boundary", degCliff),
		},
		{
			// The graceful jump is one small run's write+read (a fixed
			// seek quantum over a CPU-only baseline); the degenerate jump
			// re-spills the whole input. The contract is their contrast.
			Claim: "the graceful sort's boundary jump is a small fraction of the degenerate sort's",
			Pass:  grCliff < degCliff/3,
			Got:   fmt.Sprintf("graceful %.2fx vs degenerate %.1fx", grCliff, degCliff),
		},
	}

	series := map[string][]time.Duration{
		"sort (graceful)":   graceful,
		"sort (degenerate)": degenerate,
		"hash join (grace)": hashJoin,
	}
	title := fmt.Sprintf("Memory robustness: fixed workload (%d rows), varying memory", dataRows)
	csv := "memOverData,graceful_s,degenerate_s,hashjoin_s\n"
	for i := range budgets {
		csv += fmt.Sprintf("%.2f,%.6f,%.6f,%.6f\n",
			fractions[i], graceful[i].Seconds(), degenerate[i].Seconds(), hashJoin[i].Seconds())
	}
	return &Artifacts{
		ID:      "memsweep",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv,
		ASCII:   vis.LineChartASCII(fractions, series, 72, 18, title),
		SVG: vis.LineChartSVG(fractions, series, title,
			"memory / working set", "execution time"),
		Checks: checks,
	}
}
