package experiments

import (
	"context"
	"errors"
	"testing"

	"robustmap/internal/core"
	"robustmap/internal/plan"
)

func tinyRequestStudy(t *testing.T) *Study {
	t.Helper()
	cfg := SmallStudyConfig()
	cfg.Rows = 1 << 14
	cfg.Engine.Rows = cfg.Rows
	cfg.MaxExp1D = 6
	cfg.MaxExp2D = 5
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStudyRunSweepDefaultsAndOverrides pins the options plumbing: the
// default RunSweep is the study's 1-D System A sweep, and trailing
// options override it (here: adaptivity, which must return a mesh).
func TestStudyRunSweepDefaultsAndOverrides(t *testing.T) {
	s := tinyRequestStudy(t)
	res, err := s.RunSweep(context.Background(), plan.Figure1Plans())
	if err != nil {
		t.Fatal(err)
	}
	if res.Map1D == nil || res.Mesh1D != nil {
		t.Fatalf("default RunSweep result = %+v, want exhaustive 1-D", res)
	}
	if len(res.Map1D.Thresholds) != s.Cfg.MaxExp1D+1 {
		t.Errorf("default grid has %d points, want %d", len(res.Map1D.Thresholds), s.Cfg.MaxExp1D+1)
	}
	if !equalMap1D(res.Map1D, s.Sweep1D(plan.Figure1Plans())) {
		t.Error("RunSweep and legacy Sweep1D disagree")
	}

	res, err = s.RunSweep(context.Background(), plan.Figure1Plans(),
		core.WithAdaptive(s.adaptiveConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mesh1D == nil {
		t.Error("WithAdaptive override produced no mesh")
	}
}

func equalMap1D(a, b *core.Map1D) bool {
	if len(a.Plans) != len(b.Plans) {
		return false
	}
	for p := range a.Plans {
		if a.Plans[p] != b.Plans[p] {
			return false
		}
		for i := range a.Times[p] {
			if a.Times[p][i] != b.Times[p][i] {
				return false
			}
		}
	}
	return true
}

// TestRunContextCancellation cancels an experiment from inside its first
// sweep (via the progress callback, which fires on the first measured
// cell) and requires RunContext to surface ctx.Err() with no artifacts
// and to leave the study retryable.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := SmallStudyConfig()
	cfg.Rows = 1 << 14
	cfg.Engine.Rows = cfg.Rows
	cfg.MaxExp1D = 6
	cfg.MaxExp2D = 5
	cfg.Progress = func(core.Progress) { cancel() }
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}

	def, ok := Lookup("fig10") // 2-D figure: exercises the shared Map2D sweep
	if !ok {
		t.Fatal("fig10 not registered")
	}
	art, err := def.RunContext(ctx, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if art != nil {
		t.Fatal("cancelled experiment returned artifacts")
	}
	if s.Context() != context.Background() {
		t.Error("RunContext did not restore the study context")
	}

	// The cancelled sweep must not have cached a partial map: a retry
	// under a live context succeeds.
	s.Cfg.Progress = nil
	if _, _, err := s.Map2DContext(context.Background()); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if art, err := def.RunContext(context.Background(), s); err != nil || art == nil {
		t.Fatalf("retry RunContext = (%v, %v), want artifacts", art, err)
	}
}

// TestRunContextPreCancelled pins the fast path: an already-cancelled
// context runs nothing — even for experiments whose sweeps are already
// cached, or legend experiments that sweep nothing at all.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := tinyRequestStudy(t)
	def, _ := Lookup("fig1")
	if _, err := def.RunContext(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Warm the shared 2-D map, then require the cached path to honor
	// cancellation too (a cancelled caller must not see a success).
	if _, _, err := s.Map2DContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Map2DContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cached Map2DContext err = %v, want context.Canceled", err)
	}
	def10, _ := Lookup("fig10")
	if _, err := def10.RunContext(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("cached-map experiment err = %v, want context.Canceled", err)
	}
	legend, _ := Lookup("fig3")
	if _, err := legend.RunContext(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("legend experiment err = %v, want context.Canceled", err)
	}
}
