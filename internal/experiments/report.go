package experiments

import (
	"fmt"
	"strings"

	"robustmap/internal/core"
)

// CurveSummary renders the per-plan statistics block both CLIs print
// for 1-D maps: one "id min max max/min landmarks" line per plan.
func CurveSummary(m *core.Map1D, ids []string) string {
	var b strings.Builder
	for _, id := range ids {
		st := core.SummarizeCurve(m.Rows, m.Series(id))
		fmt.Fprintf(&b, "%-12s min=%v max=%v max/min=%.1f landmarks=%d\n",
			id, st.Min, st.Max, st.MaxOverMin, st.Landmarks)
	}
	return b.String()
}

// HTMLReport renders a set of artifacts as one self-contained HTML page
// with inline SVG maps — the "robustness report" a database team would
// publish from a nightly regression run (the paper: robustness maps "can
// inform regression testing as well as motivate, track, and protect
// improvements in query execution").
func HTMLReport(title string, arts []*Artifacts) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", htmlEscape(title))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 1100px; margin: 2em auto; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3em; }
h2 { margin-top: 2em; }
pre.summary { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.pass { color: #1a7a2c; font-weight: bold; }
.fail { color: #c0392b; font-weight: bold; }
.figure { margin: 1em 0; }
nav a { margin-right: 1em; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n<nav>", htmlEscape(title))
	for _, a := range arts {
		fmt.Fprintf(&b, `<a href="#%s">%s</a>`, a.ID, a.ID)
	}
	b.WriteString("</nav>\n")

	passed, total := 0, 0
	for _, a := range arts {
		for _, c := range a.Checks {
			total++
			if c.Pass {
				passed++
			}
		}
	}
	fmt.Fprintf(&b, "<p>%d of %d paper-claim checks passed.</p>\n", passed, total)

	for _, a := range arts {
		fmt.Fprintf(&b, `<h2 id="%s">%s</h2>`+"\n", a.ID, htmlEscape(a.Title))
		b.WriteString("<ul>\n")
		for _, c := range a.Checks {
			cls, mark := "pass", "PASS"
			if !c.Pass {
				cls, mark = "fail", "FAIL"
			}
			fmt.Fprintf(&b, `<li><span class="%s">%s</span> %s — %s</li>`+"\n",
				cls, mark, htmlEscape(c.Claim), htmlEscape(c.Got))
		}
		b.WriteString("</ul>\n")
		if a.SVG != "" {
			fmt.Fprintf(&b, `<div class="figure">%s</div>`+"\n", a.SVG)
		}
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
