package experiments

import (
	"fmt"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/exec"
	"robustmap/internal/iomodel"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
	"robustmap/internal/vis"
)

// SortSpill realizes the paper's §4 prediction as an experiment:
//
//	"we expect that some implementations of sorting spill their entire
//	 input to disk if the input size exceeds the memory size by merely a
//	 single record. Those sort implementations lacking graceful
//	 degradation will show discontinuous execution costs."
//
// The sweep varies input size across the memory boundary and maps both the
// degenerate (whole-input-spill) and the graceful (overflow-only) sort.
func SortSpill(s *Study) *Artifacts {
	schema := record.NewSchema(
		record.Column{Name: "k", Type: record.TypeInt64},
		record.Column{Name: "pad", Type: record.TypeString},
	)
	pad := record.String_(string(make([]byte, 180)))
	rowBytes := schema.EncodedSizeEstimate()
	memRows := int64(10000)
	budget := int64(rowBytes) * memRows

	// Input sizes bracketing the boundary: 0.25x .. 4x of memory.
	var sizes []int64
	for _, f := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.001, 1.1, 1.5, 2, 3, 4} {
		sizes = append(sizes, int64(f*float64(memRows)))
	}

	measure := func(n int64, pol exec.SpillPolicy) time.Duration {
		clock := simclock.New()
		dev := iomodel.NewDevice(s.Cfg.Engine.IO, clock)
		pool := storage.NewPool(storage.NewDisk(), dev, clock, 64)
		ctx := &exec.Ctx{Clock: clock, Pool: pool, MemoryBudget: budget}
		rows := make([]exec.Row, n)
		for i := range rows {
			rows[i] = exec.Row{record.Int(int64((i * 2654435761) % 1000003)), pad}
		}
		exec.Drain(exec.NewSort(ctx, &exec.SliceRows{Rows: rows}, schema, []int{0}, pol))
		return clock.Now()
	}

	fractions := make([]float64, len(sizes))
	graceful := make([]time.Duration, len(sizes))
	degenerate := make([]time.Duration, len(sizes))
	for i, n := range sizes {
		fractions[i] = float64(n) / float64(memRows)
		graceful[i] = measure(n, exec.PolicyGraceful)
		degenerate[i] = measure(n, exec.PolicyDegenerate)
	}

	cfg := core.DefaultLandmarkConfig()
	degLms := core.FindLandmarksOfKind(sizes, degenerate, cfg, core.Discontinuity)
	grLms := core.FindLandmarksOfKind(sizes, graceful, cfg, core.Discontinuity)
	checks := []Check{
		{
			Claim: "the whole-input-spill sort shows a cost discontinuity at the memory boundary",
			Pass:  len(degLms) >= 1,
			Got:   fmt.Sprintf("%d discontinuities detected", len(degLms)),
		},
		{
			Claim: "the gracefully degrading sort shows no discontinuity",
			Pass:  len(grLms) == 0,
			Got:   fmt.Sprintf("%d discontinuities detected", len(grLms)),
		},
	}

	series := map[string][]time.Duration{
		"graceful":   graceful,
		"degenerate": degenerate,
	}
	title := fmt.Sprintf("Sort spill robustness (§4): memory for %d rows", memRows)
	csv := "inputOverMemory,rows,graceful_s,degenerate_s\n"
	for i := range sizes {
		csv += fmt.Sprintf("%.3f,%d,%.6f,%.6f\n",
			fractions[i], sizes[i], graceful[i].Seconds(), degenerate[i].Seconds())
	}
	return &Artifacts{
		ID:      "sortspill",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv,
		ASCII:   vis.LineChartASCII(fractions, series, 72, 18, title),
		SVG: vis.LineChartSVG(fractions, series, title,
			"input size / memory size", "execution time"),
		Checks: checks,
	}
}
