package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/exec"
	"robustmap/internal/iomodel"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
	"robustmap/internal/vis"
)

// Extension experiments realize the paper's §4 roadmap beyond the figures:
// "Our immediate next step is to extend this analysis and its
// visualization to additional query execution algorithms including sort,
// aggregation, join algorithms, and join order", plus the two §3.3
// opportunities "not pursued in this paper": worst-performance maps and
// multi-system comparison.

// freshOpCtx builds an isolated operator-execution context.
func freshOpCtx(io iomodel.Params, budget int64) *exec.Ctx {
	clock := simclock.New()
	dev := iomodel.NewDevice(io, clock)
	pool := storage.NewPool(storage.NewDisk(), dev, clock, 64)
	return &exec.Ctx{Clock: clock, Pool: pool, MemoryBudget: budget}
}

// JoinSweep maps the robustness of hash join vs sort-merge join as the
// build input grows through the memory budget — the join-algorithm entry
// of §4 and the [GLS94] sort-vs-hash comparison the paper cites.
func JoinSweep(s *Study) *Artifacts {
	schema := record.NewSchema(
		record.Column{Name: "k", Type: record.TypeInt64},
		record.Column{Name: "pad", Type: record.TypeString},
	)
	pad := record.String_(string(make([]byte, 100)))
	rowBytes := schema.EncodedSizeEstimate()
	memRows := int64(4000)
	budget := int64(rowBytes) * memRows
	const probeRows = 8000

	mkRows := func(n int64, seed int64) []exec.Row {
		r := rand.New(rand.NewSource(seed))
		rows := make([]exec.Row, n)
		for i := range rows {
			rows[i] = exec.Row{record.Int(int64(r.Intn(int(n) + 1))), pad}
		}
		return rows
	}
	probe := mkRows(probeRows, 7)

	hashCost := func(buildN int64) time.Duration {
		ctx := freshOpCtx(s.Cfg.Engine.IO, budget)
		j := exec.NewHashJoinRows(ctx, &exec.SliceRows{Rows: mkRows(buildN, 3)},
			&exec.SliceRows{Rows: probe}, schema, schema, []int{0}, []int{0})
		exec.Drain(j)
		return ctx.Clock.Now()
	}
	mergeCost := func(buildN int64) time.Duration {
		ctx := freshOpCtx(s.Cfg.Engine.IO, budget)
		left := exec.NewSort(ctx, &exec.SliceRows{Rows: mkRows(buildN, 3)}, schema,
			[]int{0}, exec.PolicyGraceful)
		right := exec.NewSort(ctx, &exec.SliceRows{Rows: probe}, schema,
			[]int{0}, exec.PolicyGraceful)
		j := exec.NewMergeJoinRows(ctx, left, right, []int{0}, []int{0})
		exec.Drain(j)
		return ctx.Clock.Now()
	}
	nljCost := func(buildN int64) time.Duration {
		ctx := freshOpCtx(s.Cfg.Engine.IO, budget)
		j := exec.NewNestedLoopJoin(ctx, &exec.SliceRows{Rows: probe},
			&exec.SliceRows{Rows: mkRows(buildN, 3)}, []int{0}, []int{0})
		exec.Drain(j)
		return ctx.Clock.Now()
	}

	var fractions []float64
	var sizes []int64
	for _, f := range []float64{0.25, 0.5, 0.75, 0.95, 1.05, 1.5, 2, 3, 4} {
		fractions = append(fractions, f)
		sizes = append(sizes, int64(f*float64(memRows)))
	}
	hash := make([]time.Duration, len(sizes))
	merge := make([]time.Duration, len(sizes))
	nlj := make([]time.Duration, len(sizes))
	for i, n := range sizes {
		hash[i] = hashCost(n)
		merge[i] = mergeCost(n)
		nlj[i] = nljCost(n)
	}

	// Checks: in-memory hash join beats sort-merge (GLS94); past the
	// budget, hash pays the grace-partitioning cliff while the
	// graceful-sort merge join grows smoothly.
	var checks []Check
	checks = append(checks, Check{
		Claim: "hash join beats sort-merge while the build input fits in memory [GLS94]",
		Pass:  hash[0] < merge[0],
		Got:   fmt.Sprintf("%v vs %v at 0.25x memory", hash[0], merge[0]),
	})
	hashJump := float64(hash[4]) / float64(hash[3]) // 0.95x -> 1.05x
	mergeJump := float64(merge[4]) / float64(merge[3])
	checks = append(checks, Check{
		Claim: "hash join cost jumps at the memory boundary (grace partitioning round trip)",
		Pass:  hashJump > 1.5,
		Got:   fmt.Sprintf("jump %.2fx across the boundary", hashJump),
	})
	checks = append(checks, Check{
		Claim: "sort-merge join with graceful sorts crosses the boundary smoothly",
		Pass:  mergeJump < 1.3,
		Got:   fmt.Sprintf("jump %.2fx across the boundary", mergeJump),
	})
	// Nested-loop join: perfectly memory-robust (no boundary effect at
	// all) yet uniformly far slower — robustness alone is not enough.
	nljJump := float64(nlj[4]) / float64(nlj[3])
	checks = append(checks, Check{
		Claim: "nested-loop join ignores the memory boundary entirely but is far slower throughout",
		Pass:  nljJump < 1.25 && nlj[0] > 10*hash[0] && nlj[len(nlj)-1] > merge[len(merge)-1],
		Got: fmt.Sprintf("boundary jump %.2fx; %v vs hash %v at 0.25x memory",
			nljJump, nlj[0], hash[0]),
	})

	series := map[string][]time.Duration{
		"hash join": hash, "sort-merge join": merge, "nested-loop join": nlj,
	}
	title := fmt.Sprintf("Join robustness (§4): build input vs memory (%d-row budget)", memRows)
	csv := "buildOverMemory,buildRows,hash_s,merge_s,nlj_s\n"
	for i := range sizes {
		csv += fmt.Sprintf("%.2f,%d,%.6f,%.6f,%.6f\n",
			fractions[i], sizes[i], hash[i].Seconds(), merge[i].Seconds(), nlj[i].Seconds())
	}
	return &Artifacts{
		ID:      "joinsweep",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv,
		ASCII:   vis.LineChartASCII(fractions, series, 72, 18, title),
		SVG:     vis.LineChartSVG(fractions, series, title, "build size / memory size", "execution time"),
		Checks:  checks,
	}
}

// AggSweep maps aggregation robustness across group counts: hash
// aggregation holds one state per group (memory grows with groups, cost
// flat), while sort-based streaming aggregation holds one state total
// (memory flat, cost pays the sort) — the aggregation entry of §4.
func AggSweep(s *Study) *Artifacts {
	schema := record.NewSchema(
		record.Column{Name: "g", Type: record.TypeInt64},
		record.Column{Name: "v", Type: record.TypeInt64},
	)
	const inputRows = 60000
	aggs := []exec.AggSpec{{Kind: AggCountKind}, {Kind: AggSumKind, Col: 1}}

	mkRows := func(groups int64) []exec.Row {
		r := rand.New(rand.NewSource(11))
		rows := make([]exec.Row, inputRows)
		for i := range rows {
			rows[i] = exec.Row{record.Int(int64(r.Intn(int(groups)))), record.Int(int64(i))}
		}
		return rows
	}
	budget := int64(schema.EncodedSizeEstimate()) * 8000

	hashCost := func(groups int64) time.Duration {
		ctx := freshOpCtx(s.Cfg.Engine.IO, budget)
		exec.Drain(exec.NewHashAggregate(ctx, &exec.SliceRows{Rows: mkRows(groups)},
			[]int{0}, aggs))
		return ctx.Clock.Now()
	}
	sortCost := func(groups int64) time.Duration {
		ctx := freshOpCtx(s.Cfg.Engine.IO, budget)
		sorted := exec.NewSort(ctx, &exec.SliceRows{Rows: mkRows(groups)}, schema,
			[]int{0}, exec.PolicyGraceful)
		exec.Drain(exec.NewStreamAggregate(ctx, sorted, []int{0}, aggs))
		return ctx.Clock.Now()
	}

	groupCounts := []int64{1, 16, 256, 4096, 16384, 60000}
	fractions := make([]float64, len(groupCounts))
	hash := make([]time.Duration, len(groupCounts))
	sortAgg := make([]time.Duration, len(groupCounts))
	for i, g := range groupCounts {
		fractions[i] = float64(g) / float64(inputRows)
		hash[i] = hashCost(g)
		sortAgg[i] = sortCost(g)
	}

	var hashMax, hashMin = hash[0], hash[0]
	for _, t := range hash {
		if t > hashMax {
			hashMax = t
		}
		if t < hashMin {
			hashMin = t
		}
	}
	checks := []Check{
		{
			Claim: "hash aggregation cost is flat across group counts",
			Pass:  float64(hashMax)/float64(hashMin) < 1.6,
			Got:   fmt.Sprintf("max/min = %.2f", float64(hashMax)/float64(hashMin)),
		},
		{
			Claim: "sort-based aggregation pays the sort: costlier than hash aggregation throughout",
			Pass:  sortAgg[0] > hash[0] && sortAgg[len(sortAgg)-1] > hash[len(hash)-1],
			Got:   fmt.Sprintf("%v vs %v at 1 group; %v vs %v at %d groups", sortAgg[0], hash[0], sortAgg[len(sortAgg)-1], hash[len(hash)-1], groupCounts[len(groupCounts)-1]),
		},
	}

	series := map[string][]time.Duration{"hash agg": hash, "sort+stream agg": sortAgg}
	title := fmt.Sprintf("Aggregation robustness (§4): %d rows, varying group count", inputRows)
	csv := "groupFraction,groups,hash_s,sortstream_s\n"
	for i := range groupCounts {
		csv += fmt.Sprintf("%.5f,%d,%.6f,%.6f\n",
			fractions[i], groupCounts[i], hash[i].Seconds(), sortAgg[i].Seconds())
	}
	return &Artifacts{
		ID:      "aggsweep",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv,
		ASCII:   vis.LineChartASCII(fractions, series, 72, 18, title),
		SVG:     vis.LineChartSVG(fractions, series, title, "groups / input rows", "execution time"),
		Checks:  checks,
	}
}

// Aggregate kind aliases keep the experiment definitions readable.
const (
	AggCountKind = exec.AggCount
	AggSumKind   = exec.AggSum
)

// WorstMap realizes the paper's first unpursued opportunity (§3.3): map
// "particularly dangerous plans and the relative performance of plans
// compared to how bad performance could be."
func WorstMap(s *Study) *Artifacts {
	m := s.Map2D()
	headroom := m.HeadroomGrid()
	bins := core.BinGridRelative(headroom, core.DefaultRelativeBins())

	// Rank plans by how often they are the worst choice.
	type danger struct {
		plan string
		sum  core.DangerSummary
	}
	var rank []danger
	for _, p := range m.Plans {
		rank = append(rank, danger{p, core.SummarizeDanger(m.DangerGrid(p))})
	}
	var maxHeadroom float64
	for _, row := range headroom {
		for _, q := range row {
			if q > maxHeadroom {
				maxHeadroom = q
			}
		}
	}

	checks := []Check{
		{
			Claim: "the spread between best and worst plan exceeds an order of magnitude somewhere",
			Pass:  maxHeadroom >= 10,
			Got:   fmt.Sprintf("max worst/best = %.0f", maxHeadroom),
		},
	}

	var b strings.Builder
	title := "Worst-performance map (§3.3 extension): worst/best spread per point"
	fmt.Fprintf(&b, "%s\n%s\nplans most often the WORST choice:\n", title, renderChecks(checks))
	for _, d := range rank {
		if d.sum.WorstAtFraction > 0 {
			fmt.Fprintf(&b, "  %-10s worst at %4.0f%% of points (mean danger %.2f)\n",
				d.plan, d.sum.WorstAtFraction*100, d.sum.MeanDanger)
		}
	}
	labels := FractionLabels(m.FracA)
	colLabels := FractionLabels(m.FracB)
	return &Artifacts{
		ID:      "worstmap",
		Title:   title,
		Summary: b.String(),
		CSV:     csv2DQuot(m, headroom),
		ASCII: vis.HeatMapASCII(bins, vis.GlyphsRelative, labels, colLabels,
			title, "worst/best factor", legendLabelsRelative()),
		SVG: vis.HeatMapSVG(bins, vis.PaletteRelative, labels, colLabels,
			title, "selectivity of b (fraction)", "selectivity of a (fraction)", legendLabelsRelative()),
		PPM:    vis.HeatMapPPM(bins, vis.PaletteRelative, 12),
		Checks: checks,
	}
}

// SystemsCompare realizes the paper's second unpursued opportunity: "we
// have not yet compared multiple systems and their available plans." It
// maps, per point, each system's best plan against the global best.
func SystemsCompare(s *Study) *Artifacts {
	m := s.Map2D()
	pools := map[string][]string{
		"A": {"A1", "A2", "A3", "A4", "A5", "A6", "A7"},
		"B": {"B1", "B2", "B3", "B4"},
		"C": {"C1", "C2"},
	}
	global := m.BestGrid()

	sysQuot := func(ids []string) [][]float64 {
		best := m.BestGridOver(ids)
		out := make([][]float64, len(best))
		for i := range best {
			out[i] = make([]float64, len(best[i]))
			for j := range best[i] {
				out[i][j] = float64(best[i][j]) / float64(global[i][j])
			}
		}
		return out
	}
	summaries := map[string]core.RobustnessSummary{}
	for name, ids := range pools {
		summaries[name] = core.SummarizeRelative(sysQuot(ids))
	}

	checks := []Check{
		{
			Claim: "System C's covering MDAM repertoire is the most robust (smallest worst-case vs global best)",
			Pass: summaries["C"].Worst <= summaries["A"].Worst &&
				summaries["C"].Worst <= summaries["B"].Worst,
			Got: fmt.Sprintf("worst factors A=%.1f B=%.1f C=%.1f",
				summaries["A"].Worst, summaries["B"].Worst, summaries["C"].Worst),
		},
		{
			Claim: "no single system is globally optimal everywhere",
			Pass: summaries["A"].OptimalFraction < 1 &&
				summaries["B"].OptimalFraction < 1 && summaries["C"].OptimalFraction < 1,
			Got: fmt.Sprintf("optimal fractions A=%.0f%% B=%.0f%% C=%.0f%%",
				summaries["A"].OptimalFraction*100, summaries["B"].OptimalFraction*100,
				summaries["C"].OptimalFraction*100),
		},
	}

	title := "Multi-system comparison (§3.3 extension): each system's best vs global best"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, renderChecks(checks))
	fmt.Fprintf(&b, "%-8s %10s %12s %10s %8s\n", "system", "optimal%", "within10x%", "worst", "p95")
	for _, name := range []string{"A", "B", "C"} {
		sm := summaries[name]
		fmt.Fprintf(&b, "%-8s %9.0f%% %11.0f%% %10.1f %8.1f\n",
			name, sm.OptimalFraction*100, sm.WithinFactor10*100, sm.Worst, sm.P95)
	}

	// Render System C's quotient map as the figure.
	quotC := sysQuot(pools["C"])
	bins := core.BinGridRelative(quotC, core.DefaultRelativeBins())
	labels := FractionLabels(m.FracA)
	colLabels := FractionLabels(m.FracB)
	return &Artifacts{
		ID:      "systems",
		Title:   title,
		Summary: b.String(),
		CSV:     csv2DQuot(m, quotC),
		ASCII: vis.HeatMapASCII(bins, vis.GlyphsRelative, labels, colLabels,
			"System C best vs global best", "relative factor", legendLabelsRelative()),
		SVG: vis.HeatMapSVG(bins, vis.PaletteRelative, labels, colLabels,
			"System C best vs global best", "selectivity of b (fraction)",
			"selectivity of a (fraction)", legendLabelsRelative()),
		PPM:    vis.HeatMapPPM(bins, vis.PaletteRelative, 12),
		Checks: checks,
	}
}
