package experiments

import (
	"reflect"
	"testing"

	"robustmap/internal/core"
	"robustmap/internal/plan"
)

// TestAdaptiveVsExhaustiveFullStudy is the acceptance test of the adaptive
// sweeper: over the full 13-plan 2-D study at study resolution, the
// adaptive sweep (running with parallel workers — execute under -race to
// also check the engine-sharing contract) must measure at most 40% of the
// exhaustive sweep's cells while reproducing its winner grid, result-size
// grid, and map-scale landmark sets exactly, with every measured cell
// bit-identical.
func TestAdaptiveVsExhaustiveFullStudy(t *testing.T) {
	exhaustive := study(t).Map2D() // shared across the test suite

	cfg := SmallStudyConfig()
	cfg.Parallelism = 4
	cfg.Refine = true
	cfg.CacheSize = -1
	ad, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := ad.Map2D()
	mesh := ad.Mesh2D()
	if mesh == nil {
		t.Fatal("refined study did not record a mesh")
	}

	if frac := mesh.MeasuredFraction(); frac > 0.40 {
		t.Errorf("adaptive sweep measured %d of %d cells (%.1f%%), want <= 40%%",
			mesh.MeasuredCells, mesh.TotalCells, frac*100)
	}
	for p := range exhaustive.Plans {
		for i := range exhaustive.TA {
			for j := range exhaustive.TB {
				if mesh.PlanPoints[p][i][j] &&
					adaptive.Times[p][i][j] != exhaustive.Times[p][i][j] {
					t.Fatalf("measured cell (%s, %d, %d) = %v, exhaustive %v",
						exhaustive.Plans[p], i, j,
						adaptive.Times[p][i][j], exhaustive.Times[p][i][j])
				}
			}
		}
	}
	if !reflect.DeepEqual(adaptive.WinnerGrid(), exhaustive.WinnerGrid()) {
		t.Error("winner grids differ between adaptive and exhaustive study sweeps")
	}
	if !reflect.DeepEqual(adaptive.Rows, exhaustive.Rows) {
		t.Error("result-size grids differ despite the engine oracle")
	}
	lcfg := core.MapLandmarkConfig()
	for _, id := range exhaustive.Plans {
		la := adaptive.LandmarkGrid(id, lcfg)
		le := exhaustive.LandmarkGrid(id, lcfg)
		if !reflect.DeepEqual(la, le) {
			t.Errorf("map-scale landmark sets differ for plan %s: adaptive %v, exhaustive %v",
				id, la, le)
		}
	}

	// The shared measurement cache must have served the sweep: every miss
	// is a measured cell, and a repeated 1-D slice is all hits.
	if st := ad.CacheStats(); st.Misses == 0 {
		t.Error("cache recorded no misses; sources are not routed through it")
	}
	ad.Sweep1D(plan.Figure1Plans())
	mid := ad.CacheStats().Misses
	ad.Sweep1D(plan.Figure1Plans())
	after := ad.CacheStats()
	if after.Misses != mid {
		t.Errorf("repeated 1-D sweep re-measured %d cells, want 0", after.Misses-mid)
	}
	if after.Hits == 0 {
		t.Error("repeated 1-D sweep recorded no cache hits")
	}
}

// TestAdaptiveStudyDeterministicAcrossWorkers pins schedule independence
// of the engine-backed adaptive sweep at reduced scale: serial and
// 4-worker refined studies produce identical maps and meshes.
func TestAdaptiveStudyDeterministicAcrossWorkers(t *testing.T) {
	mk := func(parallelism int) *Study {
		cfg := SmallStudyConfig()
		cfg.Rows = 1 << 14
		cfg.Engine.Rows = cfg.Rows
		cfg.MaxExp2D = 6
		cfg.Parallelism = parallelism
		cfg.Refine = true
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ser, par := mk(1), mk(4)
	if !reflect.DeepEqual(ser.Map2D(), par.Map2D()) {
		t.Error("adaptive study maps differ between serial and parallel executors")
	}
	if !reflect.DeepEqual(ser.Mesh2D(), par.Mesh2D()) {
		t.Error("adaptive study meshes differ between serial and parallel executors")
	}
}

// TestAdaptiveExperimentChecks runs the registered adaptive experiment
// against the shared study and requires every acceptance check to pass.
func TestAdaptiveExperimentChecks(t *testing.T) {
	art := AdaptiveSweepExperiment(study(t))
	if !art.Passed() {
		t.Fatalf("adaptive experiment checks failed:\n%s", art.Summary)
	}
	if art.SVG == "" || art.CSV == "" || art.ASCII == "" {
		t.Error("adaptive experiment artifacts incomplete")
	}
}
