package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/plan"
	"robustmap/internal/service"
)

// TestStudyRunsAgainstService pins the re-plumbed study: with
// StudyConfig.Service set, the standard 1-D figure sweeps and the
// shared 13-plan 2-D map are submitted as jobs, and the maps that come
// back are identical to the in-process study's — same request, same
// map, any transport.
func TestStudyRunsAgainstService(t *testing.T) {
	svc := service.NewLocal(service.LocalConfig{Workers: 2, CacheSize: -1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	direct := tinyRequestStudy(t)
	served := tinyRequestStudy(t)
	served.Cfg.Service = svc

	// 1-D: the default RunSweep path goes through the service.
	dres, err := direct.RunSweep(context.Background(), plan.Figure1Plans())
	if err != nil {
		t.Fatal(err)
	}
	sres, err := served.RunSweep(context.Background(), plan.Figure1Plans())
	if err != nil {
		t.Fatal(err)
	}
	if !equalMap1D(dres.Map1D, sres.Map1D) {
		t.Error("service-backed RunSweep differs from in-process RunSweep")
	}

	// 2-D: the shared study map goes through the service, winner and
	// row grids byte-identical.
	dm, _, err := direct.Map2DContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sm, _, err := served.Map2DContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sm.Plans, dm.Plans) {
		t.Fatalf("plan order differs: %v vs %v", sm.Plans, dm.Plans)
	}
	if !reflect.DeepEqual(sm.WinnerGrid(), dm.WinnerGrid()) {
		t.Error("service-backed winner grid differs")
	}
	if !reflect.DeepEqual(sm.Rows, dm.Rows) {
		t.Error("service-backed row-count grid differs")
	}
	if !reflect.DeepEqual(sm.Times, dm.Times) {
		t.Error("service-backed time grids differ")
	}

	// A figure built on the shared map renders identically.
	ddef, _ := Lookup("fig10")
	dart, err := ddef.RunContext(context.Background(), direct)
	if err != nil {
		t.Fatal(err)
	}
	sart, err := ddef.RunContext(context.Background(), served)
	if err != nil {
		t.Fatal(err)
	}
	if dart.CSV != sart.CSV || dart.ASCII != sart.ASCII {
		t.Error("fig10 artifacts differ between direct and service-backed studies")
	}
}

// TestStudyServiceCancellation cancels a service-backed study sweep and
// requires the ctx error back, the job cancelled, and the study
// retryable — the same contract as the in-process path.
func TestStudyServiceCancellation(t *testing.T) {
	svc := service.NewLocal(service.LocalConfig{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	s := tinyRequestStudy(t)
	s.Cfg.Service = svc
	ctx, cancel := context.WithCancel(context.Background())
	s.Cfg.Progress = func(core.Progress) { cancel() }

	if _, _, err := s.Map2DContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Map2DContext err = %v, want context.Canceled", err)
	}
	// Retry under a live context succeeds.
	s.Cfg.Progress = nil
	if _, _, err := s.Map2DContext(context.Background()); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}

// submitCounter is a Service stub that only counts submissions — its
// Submit error also stops RunSweep before any waiting.
type submitCounter struct{ submits int }

func (s *submitCounter) Submit(context.Context, service.Request) (service.JobID, error) {
	s.submits++
	return "", errors.New("submitCounter: stop here")
}
func (s *submitCounter) Status(context.Context, service.JobID) (service.JobStatus, error) {
	return service.JobStatus{}, nil
}
func (s *submitCounter) Result(context.Context, service.JobID) (*service.Result, error) {
	return nil, nil
}
func (s *submitCounter) Cancel(context.Context, service.JobID) error { return nil }
func (s *submitCounter) Watch(context.Context, service.JobID) (<-chan service.Event, error) {
	return nil, nil
}

// TestStudyServiceNonSystemAPlansStayInProcess pins RunSweep's routing
// guard: the in-process contract measures every listed plan on System
// A, while a service resolves plans to their catalog systems — so only
// all-System-A lists may be submitted. A list containing a System B
// plan must never reach the service (in process it panics on System
// A's missing index — the legacy behavior, preserved unchanged).
func TestStudyServiceNonSystemAPlansStayInProcess(t *testing.T) {
	stub := &submitCounter{}
	s := tinyRequestStudy(t)
	s.Cfg.Service = stub

	// A System-A list routes to the service; the stub's submit error is
	// not cancellation, so the sweep degrades to in-process and still
	// succeeds.
	res, err := s.RunSweep(context.Background(), plan.Figure1Plans())
	if err != nil || res.Map1D == nil {
		t.Fatalf("RunSweep with a failing service = (%+v, %v), want in-process fallback", res, err)
	}
	if stub.submits != 1 {
		t.Fatalf("submits = %d, want 1", stub.submits)
	}

	// A mixed list stays in process: the stub sees nothing, and the
	// legacy panic (System A cannot run a B plan) is unchanged.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("in-process sweep of a B plan on System A no longer panics")
			}
		}()
		_, _ = s.RunSweep(context.Background(), []plan.Plan{plan.SystemBPlans()[0]})
	}()
	if stub.submits != 1 {
		t.Fatalf("non-System-A sweep reached the service (submits = %d)", stub.submits)
	}
}

// TestStudyServiceCustomEngineStaysInProcess pins serviceEligible: a
// request carries no engine profile, so a study with a customized
// Engine (or RefineConfig) must keep measuring in process instead of
// silently returning maps from the service's default machine model.
func TestStudyServiceCustomEngineStaysInProcess(t *testing.T) {
	stub := &submitCounter{}
	cfg := SmallStudyConfig()
	cfg.Rows = 1 << 14
	cfg.Engine.Rows = cfg.Rows
	cfg.MaxExp1D = 4
	cfg.Engine.PoolPages *= 2 // any non-default engine knob
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Cfg.Service = stub

	if _, err := s.RunSweep(context.Background(), plan.Figure1Plans()); err != nil {
		t.Fatalf("in-process fallback failed: %v", err)
	}
	if stub.submits != 0 {
		t.Fatalf("custom-engine study submitted to the service (submits = %d)", stub.submits)
	}

	refined := tinyRequestStudy(t)
	refined.Cfg.Service = stub
	refined.Cfg.Refine = true
	refined.Cfg.RefineConfig = &core.AdaptiveConfig{}
	if _, _, err := refined.Map2DContext(context.Background()); err != nil {
		t.Fatalf("custom-refine fallback failed: %v", err)
	}
	if stub.submits != 0 {
		t.Fatalf("custom-refine study submitted to the service (submits = %d)", stub.submits)
	}
}
