package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/optimizer"
	"robustmap/internal/service"
	"robustmap/internal/spec"
	"robustmap/internal/vis"
)

// RegretExperiment maps the optimizer against the oracle: the embedded
// paper query is enumerated into candidate plans, the cost model picks
// one per sweep point, and the measured map scores that pick against
// the per-point winner. The regret map renders the quotient
// measured(pick)/measured(best) on the paper's relative color scale;
// the non-robustness map flags cells where the pick is risky (regret
// over threshold, or the choice flips across a cell boundary — the
// paper's §3.4 criterion that steep cliffs between neighboring regions
// are where plan choices go wrong).
func RegretExperiment(s *Study) *Artifacts {
	q := optimizer.PaperQuery()
	q.Sweep.MaxExp = s.Cfg.MaxExp2D
	req := service.Request{
		Query:       q,
		Rows:        s.Cfg.Rows,
		Parallelism: s.Cfg.Parallelism,
		Refine:      s.Cfg.Refine,
	}
	ctx := s.Context()

	// Query jobs always run through the service API — that is the only
	// surface that carries the optimizer. A study service takes the job
	// when its engine profile is the default one; otherwise (or when the
	// daemon fails mid-study) an ephemeral in-process service measures
	// the same request, deterministically identically.
	var res *service.Result
	var err error
	if s.serviceEligible() {
		res, err = service.Run(ctx, s.Cfg.Service, req, s.Cfg.Progress)
		if serviceFallback(ctx, err) {
			res, err = nil, nil
		}
	}
	if res == nil && err == nil {
		l := service.NewLocal(service.LocalConfig{Workers: 1})
		res, err = service.Run(ctx, l, req, s.Cfg.Progress)
		_ = l.Close(ctx)
	}
	if err != nil {
		panic(studyInterrupt{err})
	}

	art := QueryArtifacts(q, res)
	art.ID = "regret"
	art.Checks = append([]Check{{
		Claim: "the optimizer enumerates at least 8 candidate plans for the paper query",
		Pass:  len(res.Candidates) >= 8,
		Got:   fmt.Sprintf("%d candidates", len(res.Candidates)),
	}}, art.Checks...)
	return art
}

// QueryArtifacts renders a query job's optimizer overlay — the regret
// map and the non-robustness map — as the standard artifact set. Shared
// by the regret experiment (paper query) and cmd/robustmap -query
// (any query spec file).
func QueryArtifacts(q *spec.QuerySpec, res *service.Result) *Artifacts {
	switch {
	case res.Regret2D != nil:
		return regretArtifacts2D(q, res)
	case res.Regret1D != nil:
		return regretArtifacts1D(q, res)
	default:
		// A query job always carries a regret overlay; reaching this
		// with a plain result is a caller bug worth surfacing loudly.
		panic("experiments: result carries no regret map — not a query job?")
	}
}

// regretChecks are the overlay invariants shared by both axes.
func regretChecks(badPicks int, minRegret, nonRobustFrac float64) []Check {
	return []Check{
		{
			Claim: "every sweep point gets a pick from the candidate list",
			Pass:  badPicks == 0,
			Got:   fmt.Sprintf("%d cells without a valid pick", badPicks),
		},
		{
			Claim: "regret is a quotient against the oracle, bounded below by 1",
			Pass:  minRegret >= 1,
			Got:   fmt.Sprintf("min regret %.3f", minRegret),
		},
		{
			Claim: "the optimizer is robust somewhere (non-robust fraction < 1)",
			Pass:  nonRobustFrac < 1,
			Got:   fmt.Sprintf("non-robust fraction %.2f", nonRobustFrac),
		},
	}
}

// pickShareLines appends the pick ranking to a summary.
func pickShareLines(b *strings.Builder, share map[string]float64) {
	b.WriteString("pick share per candidate:\n")
	order := make([]string, 0, len(share))
	for id := range share {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool {
		if share[order[i]] != share[order[j]] {
			return share[order[i]] > share[order[j]]
		}
		return order[i] < order[j]
	})
	for _, id := range order {
		fmt.Fprintf(b, "  %-18s picked at %4.0f%% of points\n", id, share[id]*100)
	}
}

// gridsJSON renders the machine-readable artifact: the query identity,
// the candidate list, and whichever regret overlay the job produced.
func gridsJSON(q *spec.QuerySpec, res *service.Result) string {
	b, err := json.MarshalIndent(struct {
		Query      string                  `json:"query"`
		Hash       string                  `json:"hash"`
		Candidates []service.CandidateInfo `json:"candidates"`
		Regret2D   *core.RegretMap2D       `json:"regret_2d,omitempty"`
		Regret1D   *core.RegretMap1D       `json:"regret_1d,omitempty"`
	}{q.Name, q.Hash(), res.Candidates, res.Regret2D, res.Regret1D}, "", "  ")
	if err != nil {
		panic(studyInterrupt{err})
	}
	return string(b) + "\n"
}

func regretArtifacts2D(q *spec.QuerySpec, res *service.Result) *Artifacts {
	r := res.Regret2D
	bins := core.BinGridRelative(r.Regret, core.DefaultRelativeBins())
	labels := FractionLabels(r.FracA)
	colLabels := FractionLabels(r.FracB)

	minRegret, badPicks := r.WorstRegret(), 0
	for i := range r.Picks {
		for j, p := range r.Picks[i] {
			if p < 0 || p >= len(r.Plans) {
				badPicks++
			}
			if r.Regret[i][j] < minRegret {
				minRegret = r.Regret[i][j]
			}
		}
	}
	checks := regretChecks(badPicks, minRegret, r.NonRobustFraction())

	title := fmt.Sprintf("query %s: optimizer pick vs measured oracle (regret map)", q.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s", title, renderChecks(checks))
	fmt.Fprintf(&b, "%d candidates, worst regret %.2f, non-robust at %.0f%% of points (threshold %.1fx)\n",
		len(res.Candidates), r.WorstRegret(), r.NonRobustFraction()*100, r.Threshold)
	pickShareLines(&b, r.PickFraction())

	ascii := vis.HeatMapASCII(bins, vis.GlyphsRelative, labels, colLabels,
		title, "regret (pick/best factor)", legendLabelsRelative()) +
		"\n" + vis.RegionASCII(r.NonRobust, labels,
		fmt.Sprintf("non-robust cells (regret > %.1fx or pick flips at a boundary)", r.Threshold))

	return &Artifacts{
		ID:      q.Name,
		Title:   title,
		Summary: b.String(),
		CSV:     regretCSV2D(r),
		ASCII:   ascii,
		SVG: vis.HeatMapSVG(bins, vis.PaletteRelative, labels, colLabels,
			title, "selectivity of b (fraction)", "selectivity of a (fraction)", legendLabelsRelative()),
		PPM:    vis.HeatMapPPM(bins, vis.PaletteRelative, 12),
		JSON:   gridsJSON(q, res),
		Checks: checks,
	}
}

func regretArtifacts1D(q *spec.QuerySpec, res *service.Result) *Artifacts {
	r := res.Regret1D
	minRegret, badPicks, flagged := 0.0, 0, 0
	share := map[string]float64{}
	if len(r.Picks) > 0 {
		minRegret = r.Regret[0]
	}
	for i, p := range r.Picks {
		if p < 0 || p >= len(r.Plans) {
			badPicks++
		} else {
			share[r.Plans[p]] += 1 / float64(len(r.Picks))
		}
		if r.Regret[i] < minRegret {
			minRegret = r.Regret[i]
		}
		if r.NonRobust[i] {
			flagged++
		}
	}
	nonRobustFrac := float64(flagged) / float64(max(len(r.Picks), 1))
	checks := regretChecks(badPicks, minRegret, nonRobustFrac)

	title := fmt.Sprintf("query %s: optimizer pick vs measured oracle (1-D regret)", q.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s", title, renderChecks(checks))
	fmt.Fprintf(&b, "%d candidates, non-robust at %.0f%% of points (threshold %.1fx)\n",
		len(res.Candidates), nonRobustFrac*100, r.Threshold)
	pickShareLines(&b, share)
	b.WriteString("per-point picks:\n")
	for i, p := range r.Picks {
		plan := "(none)"
		if p >= 0 && p < len(r.Plans) {
			plan = r.Plans[p]
		}
		flag := ""
		if r.NonRobust[i] {
			flag = "  NON-ROBUST"
		}
		fmt.Fprintf(&b, "  %-8s %-18s regret %.2f%s\n",
			FractionLabels(r.Fractions[i : i+1])[0], plan, r.Regret[i], flag)
	}

	// Render regret factors on the line-chart scale the relative
	// figures use: the factor is plotted as seconds.
	series := map[string][]time.Duration{"regret": factorSeries(r.Regret)}
	return &Artifacts{
		ID:      q.Name,
		Title:   title,
		Summary: b.String(),
		CSV:     regretCSV1D(r),
		ASCII: vis.LineChartASCII(r.Fractions, series, 72, 18,
			title+" (y = factor, rendered as seconds)") +
			"\n" + vis.RegionASCII([][]bool{r.NonRobust}, []string{"axis"},
			fmt.Sprintf("non-robust cells (regret > %.1fx or pick flips)", r.Threshold)),
		SVG: vis.LineChartSVG(r.Fractions, series, title,
			"selectivity (fraction of rows)", "regret factor over oracle"),
		JSON:   gridsJSON(q, res),
		Checks: checks,
	}
}

// factorSeries maps dimensionless factors onto the Duration axis the
// line charts plot (1.0 → 1s), the same trick Figure 2 uses.
func factorSeries(fs []float64) []time.Duration {
	out := make([]time.Duration, len(fs))
	for i, f := range fs {
		out[i] = time.Duration(f * float64(time.Second))
	}
	return out
}

// regretCSV2D renders the regret map as long-form CSV: one row per
// sweep cell with the pick, its regret, and the non-robustness flag.
func regretCSV2D(r *core.RegretMap2D) string {
	var b strings.Builder
	b.WriteString("fracA,fracB,ta,tb,pick,plan,regret,non_robust\n")
	for i := range r.Picks {
		for j := range r.Picks[i] {
			plan := ""
			if p := r.Picks[i][j]; p >= 0 && p < len(r.Plans) {
				plan = r.Plans[p]
			}
			fmt.Fprintf(&b, "%g,%g,%d,%d,%d,%s,%.4f,%v\n",
				r.FracA[i], r.FracB[j], r.TA[i], r.TB[j],
				r.Picks[i][j], plan, r.Regret[i][j], r.NonRobust[i][j])
		}
	}
	return b.String()
}

// regretCSV1D is the 1-D counterpart of regretCSV2D.
func regretCSV1D(r *core.RegretMap1D) string {
	var b strings.Builder
	b.WriteString("fraction,threshold,pick,plan,regret,non_robust\n")
	for i, p := range r.Picks {
		plan := ""
		if p >= 0 && p < len(r.Plans) {
			plan = r.Plans[p]
		}
		fmt.Fprintf(&b, "%g,%d,%d,%s,%.4f,%v\n",
			r.Fractions[i], r.Thresholds[i], p, plan, r.Regret[i], r.NonRobust[i])
	}
	return b.String()
}
