package experiments

import (
	"strings"
	"testing"
)

func TestHTMLReport(t *testing.T) {
	arts := []*Artifacts{
		{
			ID: "fig3", Title: "Figure 3 <legend>",
			SVG: "<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>",
			Checks: []Check{
				{Claim: "bins & labels", Pass: true, Got: "6 bins"},
				{Claim: "something", Pass: false, Got: "oops"},
			},
		},
		{ID: "fig6", Title: "Figure 6", Checks: []Check{{Claim: "x", Pass: true, Got: "y"}}},
	}
	h := HTMLReport("Test <Report>", arts)
	if !strings.Contains(h, "<!DOCTYPE html>") {
		t.Error("missing doctype")
	}
	if !strings.Contains(h, "Test &lt;Report&gt;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(h, "Figure 3 &lt;legend&gt;") {
		t.Error("artifact title not escaped")
	}
	if !strings.Contains(h, "2 of 3 paper-claim checks passed") {
		t.Errorf("check tally wrong")
	}
	if !strings.Contains(h, `class="fail"`) || !strings.Contains(h, `class="pass"`) {
		t.Error("missing check classes")
	}
	if !strings.Contains(h, "<svg") {
		t.Error("missing inline SVG")
	}
	if !strings.Contains(h, `href="#fig6"`) {
		t.Error("missing nav link")
	}
}
