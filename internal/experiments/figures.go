package experiments

import (
	"fmt"
	"strings"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/plan"
	"robustmap/internal/vis"
)

// Artifacts is everything one experiment produces.
type Artifacts struct {
	// ID is the experiment id (fig1 … fig10, sortspill).
	ID string
	// Title describes the experiment.
	Title string
	// Summary is the textual report, including the checks of the paper's
	// qualitative claims.
	Summary string
	// CSV is the raw data.
	CSV string
	// ASCII is the terminal rendering.
	ASCII string
	// SVG is the document rendering.
	SVG string
	// PPM is the bitmap rendering (2-D maps only).
	PPM string
	// JSON carries machine-readable grids (picks, regret, non-robust
	// cells) for experiments that produce them; empty otherwise.
	JSON string
	// Checks lists the outcome of each qualitative assertion.
	Checks []Check
}

// Check is one verified qualitative claim from the paper.
type Check struct {
	Claim string
	Pass  bool
	Got   string
}

// Passed reports whether all checks passed.
func (a *Artifacts) Passed() bool {
	for _, c := range a.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

func renderChecks(checks []Check) string {
	var b strings.Builder
	for _, c := range checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s — %s\n", mark, c.Claim, c.Got)
	}
	return b.String()
}

// Figure1 reproduces the 1-D single-predicate selection diagram: table
// scan vs. traditional vs. improved index scan, absolute log/log.
func Figure1(s *Study) *Artifacts {
	m := s.Sweep1D(plan.Figure1Plans())
	series := map[string][]time.Duration{}
	for _, p := range m.Plans {
		series[p] = m.Series(p)
	}
	last := len(m.Thresholds) - 1

	scan := m.Series("A1")
	trad := m.Series("F1-trad")
	impr := m.Series("A2")

	scanStats := core.SummarizeCurve(m.Rows, scan)
	var checks []Check
	checks = append(checks, Check{
		Claim: "table scan cost is constant across the entire range",
		Pass:  scanStats.MaxOverMin <= 1.3,
		Got:   fmt.Sprintf("max/min = %.2f", scanStats.MaxOverMin),
	})
	tradWorst := float64(trad[last]) / float64(scan[last])
	checks = append(checks, Check{
		Claim: "traditional index scan exceeds the table scan by a large factor at full selectivity",
		Pass:  tradWorst >= 10,
		Got:   fmt.Sprintf("factor %.0f", tradWorst),
	})
	imprWorst := float64(impr[last]) / float64(scan[last])
	checks = append(checks, Check{
		Claim: "improved index scan is about 2.5x a table scan at full selectivity (painful but bounded)",
		Pass:  imprWorst >= 1.3 && imprWorst <= 4.0,
		Got:   fmt.Sprintf("factor %.2f", imprWorst),
	})
	// Crossover: traditional exceeds the scan around 2^-11 of the table in
	// the paper; accept 2^-13 … 2^-6.
	crossExp := -1
	for i := range m.Thresholds {
		if trad[i] > scan[i] {
			for k := 0; ; k++ {
				if m.Rows[i]<<uint(k) >= s.Cfg.Rows {
					crossExp = k
					break
				}
			}
			break
		}
	}
	checks = append(checks, Check{
		Claim: "break-even table scan vs traditional index scan near 2^-11 of the table (accept 2^-13..2^-6)",
		Pass:  crossExp >= 6 && crossExp <= 13,
		Got:   fmt.Sprintf("crossover at 2^-%d", crossExp),
	})
	// Competitive range of the improved plan (paper: up to ~2^-4).
	compExp := -1
	for i := len(m.Thresholds) - 1; i >= 0; i-- {
		if float64(impr[i]) <= 1.5*float64(scan[i]) {
			for k := 0; ; k++ {
				if m.Rows[i]<<uint(k) >= s.Cfg.Rows {
					compExp = k
					break
				}
			}
			break
		}
	}
	checks = append(checks, Check{
		Claim: "improved index scan competitive with the table scan up to ~2^-4 of the rows",
		Pass:  compExp >= 0 && compExp <= 5,
		Got:   fmt.Sprintf("competitive through 2^-%d", compExp),
	})
	// The paper notes the improved scan's flat-then-steeper growth: a
	// non-flattening landmark should exist on its curve.
	lms := core.FindLandmarksOfKind(m.Rows, impr, core.DefaultLandmarkConfig(), core.NonFlattening)
	checks = append(checks, Check{
		Claim: "improved index scan shows flat cost growth followed by steeper growth (non-flattening landmark)",
		Pass:  len(lms) > 0,
		Got:   fmt.Sprintf("%d non-flattening landmarks", len(lms)),
	})

	title := fmt.Sprintf("Figure 1: single-table single-predicate selection (%d rows)", s.Cfg.Rows)
	return &Artifacts{
		ID:      "fig1",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv1D(m),
		ASCII:   vis.LineChartASCII(m.Fractions, series, 72, 20, title),
		SVG:     vis.LineChartSVG(m.Fractions, series, title, "selectivity (fraction of rows)", "execution time"),
		Checks:  checks,
	}
}

// Figure2 reproduces the relative-performance diagram with the advanced
// selection plans (covering index joins).
func Figure2(s *Study) *Artifacts {
	m := s.Sweep1D(plan.Figure2Plans())
	// Relative series (quotient against best per point).
	series := map[string][]time.Duration{}
	for _, p := range m.Plans {
		rel := m.Relative(p)
		ts := make([]time.Duration, len(rel))
		for i, q := range rel {
			ts[i] = time.Duration(q * float64(time.Second)) // factor as pseudo-seconds
		}
		series[p] = ts
	}

	var checks []Check
	// Every point should have some plan at factor 1 by construction; the
	// index-join plans must beat the table scan at small selectivities
	// (they scan indexes, not the table).
	joinRel := m.Relative("F2-merge-ab")
	scanRel := m.Relative("A1")
	checks = append(checks, Check{
		Claim: "covering index-join plans beat the table scan at small result sizes",
		Pass:  joinRel[0] < scanRel[0],
		Got:   fmt.Sprintf("factors %.2f vs %.2f at the smallest point", joinRel[0], scanRel[0]),
	})
	// And the improved index scan stays within a small factor of the best
	// plan over most of the range — the robustness Figure 2 illustrates.
	imprRel := m.Relative("A2")
	within := 0
	for _, q := range imprRel {
		if q <= 3 {
			within++
		}
	}
	withinFrac := float64(within) / float64(len(imprRel))
	checks = append(checks, Check{
		Claim: "improved index scan stays within 3x of the best plan over most of the range",
		Pass:  withinFrac >= 0.6,
		Got:   fmt.Sprintf("within 3x on %.0f%% of points (min factor %.2f)", withinFrac*100, minF(imprRel)),
	})

	title := "Figure 2: advanced selection plans, relative to the best plan"
	return &Artifacts{
		ID:      "fig2",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv1D(m),
		ASCII:   vis.LineChartASCII(m.Fractions, series, 72, 20, title+" (y = factor, rendered as seconds)"),
		SVG:     vis.LineChartSVG(m.Fractions, series, title, "selectivity (fraction of rows)", "factor over best plan"),
		Checks:  checks,
	}
}

// relOptimalRegion converts a quotient grid to the boolean region of
// (near-)factor-1 points.
func relOptimalRegion(rel [][]float64) [][]bool {
	out := make([][]bool, len(rel))
	for i, row := range rel {
		out[i] = make([]bool, len(row))
		for j, q := range row {
			out[i][j] = q <= 1.05
		}
	}
	return out
}

func minF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Figure3 reproduces the absolute color scale legend.
func Figure3(*Study) *Artifacts {
	bins := core.DefaultAbsoluteBins()
	labels := make([]string, bins.Count)
	for i := range labels {
		labels[i] = bins.Label(i)
	}
	title := "Figure 3: color code for 2-D maps (absolute execution time)"
	var ascii strings.Builder
	fmt.Fprintf(&ascii, "%s\n", title)
	for i, l := range labels {
		fmt.Fprintf(&ascii, "  %c  %s\n", vis.GlyphsAbsolute[i], l)
	}
	return &Artifacts{
		ID:      "fig3",
		Title:   title,
		Summary: title + "\n" + ascii.String(),
		CSV:     "bin,label\n" + csvLabels(labels),
		ASCII:   ascii.String(),
		SVG:     vis.LegendSVG(vis.PaletteAbsolute, labels, title),
		Checks:  []Check{{Claim: "six order-of-magnitude bins (0.001s..1000s)", Pass: len(labels) == 6, Got: fmt.Sprintf("%d bins", len(labels))}},
	}
}

// Figure6 reproduces the relative color scale legend.
func Figure6(*Study) *Artifacts {
	bins := core.DefaultRelativeBins()
	labels := make([]string, bins.Count)
	for i := range labels {
		labels[i] = bins.Label(i)
	}
	title := "Figure 6: color code for relative performance"
	var ascii strings.Builder
	fmt.Fprintf(&ascii, "%s\n", title)
	for i, l := range labels {
		fmt.Fprintf(&ascii, "  %c  %s\n", vis.GlyphsRelative[i], l)
	}
	return &Artifacts{
		ID:      "fig6",
		Title:   title,
		Summary: title + "\n" + ascii.String(),
		CSV:     "bin,label\n" + csvLabels(labels),
		ASCII:   ascii.String(),
		SVG:     vis.LegendSVG(vis.PaletteRelative, labels, title),
		Checks:  []Check{{Claim: "factor-1 bin plus five decades up to 100,000", Pass: len(labels) == 6, Got: fmt.Sprintf("%d bins", len(labels))}},
	}
}

func csvLabels(labels []string) string {
	var b strings.Builder
	for i, l := range labels {
		fmt.Fprintf(&b, "%d,%s\n", i, l)
	}
	return b.String()
}

// absolute2D renders one plan's absolute 2-D map.
func absolute2D(s *Study, id, title, planID string, check func(m *core.Map2D) []Check) *Artifacts {
	m := s.Map2D()
	grid := m.PlanGrid(planID)
	bins := core.BinGridAbsolute(grid, core.DefaultAbsoluteBins())
	labels := FractionLabels(m.FracA)
	colLabels := FractionLabels(m.FracB)
	binLabels := legendLabelsAbsolute()
	checks := check(m)
	return &Artifacts{
		ID:      id,
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv2DDur(m, grid),
		ASCII: vis.HeatMapASCII(bins, vis.GlyphsAbsolute, labels, colLabels,
			title, "absolute time", binLabels),
		SVG: vis.HeatMapSVG(bins, vis.PaletteAbsolute, labels, colLabels,
			title, "selectivity of b (fraction)", "selectivity of a (fraction)", binLabels),
		PPM:    vis.HeatMapPPM(bins, vis.PaletteAbsolute, 12),
		Checks: checks,
	}
}

// systemABaseline returns the ids of System A's seven plans — the "best
// of seven plans" pool that Figures 7, 8, and 9 are measured against.
func systemABaseline() []string {
	var out []string
	for _, p := range plan.SystemAPlans() {
		out = append(out, p.ID)
	}
	return out
}

// relative2D renders one plan's map relative to the System A baseline.
func relative2D(s *Study, id, title, planID string, check func(m *core.Map2D) []Check) *Artifacts {
	m := s.Map2D()
	grid := m.RelativeGridAgainst(planID, systemABaseline())
	bins := core.BinGridRelative(grid, core.DefaultRelativeBins())
	labels := FractionLabels(m.FracA)
	colLabels := FractionLabels(m.FracB)
	binLabels := legendLabelsRelative()
	checks := check(m)
	return &Artifacts{
		ID:      id,
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv2DQuot(m, grid),
		ASCII: vis.HeatMapASCII(bins, vis.GlyphsRelative, labels, colLabels,
			title, "relative factor", binLabels),
		SVG: vis.HeatMapSVG(bins, vis.PaletteRelative, labels, colLabels,
			title, "selectivity of b (fraction)", "selectivity of a (fraction)", binLabels),
		PPM:    vis.HeatMapPPM(bins, vis.PaletteRelative, 12),
		Checks: checks,
	}
}

func legendLabelsAbsolute() []string { return core.DefaultAbsoluteBins().Labels() }

func legendLabelsRelative() []string { return core.DefaultRelativeBins().Labels() }

// Figure4 is the two-predicate single-index plan, absolute.
func Figure4(s *Study) *Artifacts {
	return absolute2D(s, "fig4",
		"Figure 4: two-predicate single-index selection (plan A2, absolute)",
		"A2", func(m *core.Map2D) []Check {
			grid := m.PlanGrid("A2")
			n := len(grid)
			// Along the indexed dimension (a) cost varies strongly; along
			// the residual dimension (b) it barely moves.
			maxA, minA := grid[n-1][n-1], grid[0][n-1]
			ratioIndexed := float64(maxA) / float64(minA)
			worstResidual := 1.0
			for i := 0; i < n; i++ {
				lo, hi := grid[i][0], grid[i][0]
				for _, t := range grid[i] {
					if t < lo {
						lo = t
					}
					if t > hi {
						hi = t
					}
				}
				if r := float64(hi) / float64(lo); r > worstResidual {
					worstResidual = r
				}
			}
			return []Check{
				{
					Claim: "the indexed predicate's selectivity dominates cost",
					Pass:  ratioIndexed >= 5,
					Got:   fmt.Sprintf("cost ratio %.1f along a", ratioIndexed),
				},
				{
					Claim: "the residual predicate has practically no effect (evaluated only after fetching)",
					Pass:  worstResidual <= 1.5,
					Got:   fmt.Sprintf("worst cost ratio %.2f along b", worstResidual),
				},
			}
		})
}

// Figure5 is the two-index merge join, absolute.
func Figure5(s *Study) *Artifacts {
	return absolute2D(s, "fig5",
		"Figure 5: two-index merge join (plan A4, absolute)",
		"A4", func(m *core.Map2D) []Check {
			grid := m.PlanGrid("A4")
			n := len(grid)
			// Symmetry: cost(i,j) ≈ cost(j,i). Two noise sources are
			// excluded, as the paper excludes its "measurement flukes in
			// the sub-second range": points below 5% of the grid maximum,
			// and points where the transposed intersections contain
			// materially different row counts (with tens of expected
			// matches, the binomial count noise dominates the fetch cost —
			// that is data noise, not plan asymmetry).
			var maxT time.Duration
			for _, row := range grid {
				for _, t := range row {
					if t > maxT {
						maxT = t
					}
				}
			}
			floor := maxT / 20
			worst := 1.0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if grid[i][j] < floor && grid[j][i] < floor {
						continue
					}
					r1, r2 := float64(m.Rows[i][j]), float64(m.Rows[j][i])
					if d := r1 - r2; d > 0.1*r1+2 || -d > 0.1*r1+2 {
						continue
					}
					r := float64(grid[i][j]) / float64(grid[j][i])
					if r < 1 {
						r = 1 / r
					}
					if r > worst {
						worst = r
					}
				}
			}
			return []Check{needsExactCells(s, Check{
				Claim: "the merge-join map is symmetric: the two dimensions have very similar effects",
				Pass:  worst <= 1.4,
				Got:   fmt.Sprintf("worst transposition asymmetry %.2f above the noise floor", worst),
			})}
		})
}

// Figure7 is the single-index plan relative to the best of System A's
// seven plans (we use the best of all 13, a strictly harder standard).
func Figure7(s *Study) *Artifacts {
	return relative2D(s, "fig7",
		"Figure 7: plan A2 relative to the best of System A's seven plans",
		"A2", func(m *core.Map2D) []Check {
			rel := m.RelativeGridAgainst("A2", systemABaseline())
			sum := core.SummarizeRelative(rel)
			region := relOptimalRegion(rel)
			st := core.AnalyzeRegion(region)
			return []Check{
				{
					Claim: "the plan is optimal only in a small part of the parameter space",
					Pass:  st.AreaFraction > 0 && st.AreaFraction < 0.5,
					Got:   fmt.Sprintf("optimal on %.0f%% of the grid", st.AreaFraction*100),
				},
				{
					// The worst quotient scales with the table size: it is
					// roughly (2.5 x scan time) / (conjunction-plan floor).
					// The paper's 101,000 comes from a 60M-row table; at
					// 2^17 rows the same shape yields tens.
					Claim: "worst relative performance is disruptive (paper: factor 101,000 at 60M rows; grows with scale)",
					Pass:  sum.Worst >= 10,
					Got:   fmt.Sprintf("worst factor %.0f", sum.Worst),
				},
			}
		})
}

// Figure8 is System B's two-column-index plan with bitmap fetch, relative.
func Figure8(s *Study) *Artifacts {
	return relative2D(s, "fig8",
		"Figure 8: System B two-column index with bitmap fetch (plan B1, relative)",
		"B1", func(m *core.Map2D) []Check {
			base := systemABaseline()
			relB := core.SummarizeRelative(m.RelativeGridAgainst("B1", base))
			relA := core.SummarizeRelative(m.RelativeGridAgainst("A2", base))
			return []Check{
				{
					Claim: "close to optimal over a much larger region than Figure 7's plan",
					Pass:  relB.OptimalFraction > relA.OptimalFraction && relB.WithinFactor10 >= relA.WithinFactor10,
					Got: fmt.Sprintf("factor-1 area %.0f%% vs %.0f%%, within-10x %.0f%% vs %.0f%%",
						relB.OptimalFraction*100, relA.OptimalFraction*100,
						relB.WithinFactor10*100, relA.WithinFactor10*100),
				},
				{
					Claim: "worst quotient is not as bad as the prior plan's",
					Pass:  relB.Worst < relA.Worst,
					Got:   fmt.Sprintf("worst %.0f vs %.0f", relB.Worst, relA.Worst),
				},
			}
		})
}

// Figure9 is System C's MDAM plan, relative.
func Figure9(s *Study) *Artifacts {
	return relative2D(s, "fig9",
		"Figure 9: System C MDAM over a two-column index (plan C1, relative)",
		"C1", func(m *core.Map2D) []Check {
			rel := m.RelativeGridAgainst("C1", systemABaseline())
			sum := core.SummarizeRelative(rel)
			fig7worst := core.SummarizeRelative(m.RelativeGridAgainst("A2", systemABaseline())).Worst
			beaten := 0
			for _, row := range rel {
				for _, q := range row {
					if q >= 1.5 {
						beaten++
					}
				}
			}
			return []Check{
				{
					Claim: "relative performance is reasonable across the entire parameter space",
					Pass:  sum.Worst < fig7worst && sum.Worst <= 20,
					Got:   fmt.Sprintf("worst factor %.1f (Figure 7 plan: %.0f)", sum.Worst, fig7worst),
				},
				{
					// The paper's C plan was rarely the best plan outright;
					// in our engine the covering index-only scan wins more
					// of the space (no cross-system hardware differences),
					// but it must still be clearly beaten somewhere.
					Claim: "albeit not optimal everywhere (strictly beaten in part of the space)",
					Pass:  beaten >= 1,
					Got:   fmt.Sprintf("beaten >=1.5x at %d points", beaten),
				},
			}
		})
}

// Figure10 maps the number of optimal plans per point at the paper's 0.1s
// absolute tolerance.
func Figure10(s *Study) *Artifacts {
	m := s.Map2D()
	om := core.ComputeOptimality(m, core.Tolerance{Absolute: 100 * time.Millisecond, Relative: 1.01})
	counts := om.CountGrid()
	// Bin = min(count-1, 5) so the relative palette doubles as a count
	// scale: bin 0 = exactly one optimal plan.
	bins := make([][]int, len(counts))
	maxCount := 0
	for i, row := range counts {
		bins[i] = make([]int, len(row))
		for j, c := range row {
			b := c - 1
			if b > 5 {
				b = 5
			}
			if b < 0 {
				b = 0
			}
			bins[i][j] = b
			if c > maxCount {
				maxCount = c
			}
		}
	}
	frac := om.MultiOptimalFraction(2)
	checks := []Check{{
		Claim: "most points in the parameter space have multiple optimal plans (within tolerance)",
		Pass:  frac > 0.5,
		Got:   fmt.Sprintf("%.0f%% of points have >= 2 optimal plans (max %d)", frac*100, maxCount),
	}}

	labels := FractionLabels(m.FracA)
	colLabels := FractionLabels(m.FracB)
	binLabels := []string{"1 plan", "2 plans", "3 plans", "4 plans", "5 plans", "6+ plans"}
	title := "Figure 10: number of optimal plans per point (0.1s tolerance)"
	csv := "fracA\\fracB"
	for _, f := range m.FracB {
		csv += fmt.Sprintf(",%g", f)
	}
	csv += "\n"
	for i, f := range m.FracA {
		csv += fmt.Sprintf("%g", f)
		for j := range m.FracB {
			csv += fmt.Sprintf(",%d", counts[i][j])
		}
		csv += "\n"
	}
	return &Artifacts{
		ID:      "fig10",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv,
		ASCII: vis.HeatMapASCII(bins, vis.GlyphsRelative, labels, colLabels,
			title, "optimal plan count", binLabels),
		SVG: vis.HeatMapSVG(bins, vis.PaletteRelative, labels, colLabels,
			title, "selectivity of b (fraction)", "selectivity of a (fraction)", binLabels),
		PPM:    vis.HeatMapPPM(bins, vis.PaletteRelative, 12),
		Checks: checks,
	}
}
