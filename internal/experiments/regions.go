package experiments

import (
	"fmt"
	"strings"

	"robustmap/internal/core"
	"robustmap/internal/vis"
)

// Regions realizes §3.4's per-plan optimality-region study: "Variants of
// Figure 8 and Figure 9 can be used to show the region of optimality for
// a specific plan. … this type of diagram inherently requires one diagram
// per plan and thus many diagrams." It renders every plan's region,
// reports the §3.4 shape statistics (size, connected components,
// irregularity), and checks the paper's observations: the regions cover
// the space, several plans own none of it (candidates for elimination
// from the optimizer's search space), and at least one region is
// discontinuous (the Figure 7 surprise).
func Regions(s *Study) *Artifacts {
	m := s.Map2D()
	om := core.ComputeOptimality(m, core.Tolerance{Relative: 1.05})
	labels := FractionLabels(m.FracA)

	title := "Optimality regions per plan (§3.4), tolerance 5%"
	var ascii strings.Builder
	var csv strings.Builder
	csv.WriteString("plan,areaFraction,components,largestComponentFraction,irregularity\n")

	empty := 0
	covered := true
	counts := om.CountGrid()
	for _, row := range counts {
		for _, c := range row {
			if c == 0 {
				covered = false
			}
		}
	}
	for _, p := range m.Plans {
		region := om.PlanRegion(p)
		st := core.AnalyzeRegion(region)
		if st.AreaFraction == 0 {
			empty++
		}
		fmt.Fprintf(&csv, "%s,%.4f,%d,%.4f,%.3f\n",
			p, st.AreaFraction, st.Components, st.LargestComponentFraction, st.Irregularity)
		fmt.Fprintf(&ascii, "\n%s\n", vis.RegionASCII(region, labels,
			fmt.Sprintf("plan %s: optimal on %.0f%% of the grid, %d component(s)",
				p, st.AreaFraction*100, st.Components)))
	}

	// The paper's fragmentation observation (Figure 7: "this region is not
	// continuous, which is rather surprising") is made within System A's
	// own plan pool — against the best of the seven, not the global best.
	subOm := core.ComputeOptimality(m.SubMap(systemABaseline()), core.Tolerance{Relative: 1.05})
	oddShaped := 0
	var oddDetail []string
	for _, p := range systemABaseline() {
		st := core.AnalyzeRegion(subOm.PlanRegion(p))
		if st.AreaFraction > 0 && (st.Components > 1 || st.Irregularity >= 1.8) {
			oddShaped++
			oddDetail = append(oddDetail,
				fmt.Sprintf("%s(comps=%d irr=%.1f)", p, st.Components, st.Irregularity))
		}
	}

	checks := []Check{
		{
			Claim: "every point has at least one optimal plan (the regions cover the space)",
			Pass:  covered,
			Got:   fmt.Sprintf("covered = %v", covered),
		},
		{
			// §3.4: "Every plan eliminated from this map implies that query
			// optimization need not consider this plan."
			Claim: "some plans own no region at all (candidates for plan-space reduction)",
			Pass:  empty >= 1,
			Got:   fmt.Sprintf("%d of %d plans have empty regions", empty, len(m.Plans)),
		},
		{
			// §3.4: "it might be interesting to focus on irregular shapes of
			// optimality regions — chances are good that some implementation
			// idiosyncrasy rather than the algorithm itself causes the
			// irregular shape."
			Claim: "within System A's pool, some region is discontinuous or irregular",
			Pass:  oddShaped >= 1,
			Got:   fmt.Sprintf("%d odd-shaped regions: %s", oddShaped, strings.Join(oddDetail, " ")),
		},
	}

	return &Artifacts{
		ID:      "regions",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv.String(),
		ASCII:   ascii.String(),
		SVG:     regionsSVG(m, om, labels),
		Checks:  checks,
	}
}

// regionsSVG renders all plan regions as a stack of small heat maps.
func regionsSVG(m *core.Map2D, om *core.OptimalityMap, labels []string) string {
	// Reuse the relative palette's two extremes as in/out colors via a
	// binned grid: 0 = not optimal, 1 = optimal.
	var parts []string
	for _, p := range m.Plans {
		region := om.PlanRegion(p)
		bins := make([][]int, len(region))
		for i, row := range region {
			bins[i] = make([]int, len(row))
			for j, in := range row {
				if in {
					bins[i][j] = 0 // light green: optimal
				} else {
					bins[i][j] = 5 // dark: not optimal
				}
			}
		}
		parts = append(parts, vis.HeatMapSVG(bins, vis.PaletteRelative, labels, labels,
			"optimality region of plan "+p, "selectivity of b", "selectivity of a",
			[]string{"optimal", "", "", "", "", "not optimal"}))
	}
	// Concatenated SVGs are wrapped in a single document per figure; the
	// report embeds them separately, so join with newlines.
	return strings.Join(parts, "\n")
}
