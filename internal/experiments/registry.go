package experiments

import (
	"context"
	"fmt"
	"sort"
)

// Definition registers one experiment.
type Definition struct {
	ID    string
	Paper string // the paper artifact being reproduced
	Run   func(*Study) *Artifacts
}

// RunContext runs the experiment with the study's sweeps under ctx:
// cancelling ctx aborts the sweep in flight and returns ctx.Err() with no
// artifacts. The study's previous context is restored afterwards. Other
// panics (a broken plan's row-count cross-check) propagate unchanged.
func (d Definition) RunContext(ctx context.Context, s *Study) (art *Artifacts, err error) {
	// Check up front: experiments whose sweeps are already cached (or that
	// need no sweep at all) would otherwise never observe the context.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s == nil { // legend-only experiments take no study
		return d.Run(nil), nil
	}
	prev := s.ctx
	s.SetContext(ctx)
	defer func() {
		s.ctx = prev
		if r := recover(); r != nil {
			si, ok := r.(studyInterrupt)
			if !ok {
				panic(r)
			}
			art, err = nil, si.err
		}
	}()
	return d.Run(s), nil
}

// Registry lists every experiment, keyed by id.
var registry = map[string]Definition{
	"fig1":       {ID: "fig1", Paper: "Figure 1: single-table single-predicate selection", Run: Figure1},
	"fig2":       {ID: "fig2", Paper: "Figure 2: advanced selection plans (relative)", Run: Figure2},
	"fig3":       {ID: "fig3", Paper: "Figure 3: color code for 2-D maps", Run: Figure3},
	"fig4":       {ID: "fig4", Paper: "Figure 4: two-predicate single-index selection", Run: Figure4},
	"fig5":       {ID: "fig5", Paper: "Figure 5: two-index merge join", Run: Figure5},
	"fig6":       {ID: "fig6", Paper: "Figure 6: color code for relative performance", Run: Figure6},
	"fig7":       {ID: "fig7", Paper: "Figure 7: single-index plan vs best of 7 plans", Run: Figure7},
	"fig8":       {ID: "fig8", Paper: "Figure 8: System B two-column index (relative)", Run: Figure8},
	"fig9":       {ID: "fig9", Paper: "Figure 9: System C MDAM (relative)", Run: Figure9},
	"fig10":      {ID: "fig10", Paper: "Figure 10: optimal plans per point", Run: Figure10},
	"adaptive":   {ID: "adaptive", Paper: "§5 future work: hardware-limited sweeps — adaptive refinement vs exhaustive", Run: AdaptiveSweepExperiment},
	"sortspill":  {ID: "sortspill", Paper: "§4 prediction: sort spill discontinuity", Run: SortSpill},
	"joinsweep":  {ID: "joinsweep", Paper: "§4 roadmap: join algorithm robustness (sort vs hash, [GLS94])", Run: JoinSweep},
	"aggsweep":   {ID: "aggsweep", Paper: "§4 roadmap: aggregation robustness (hash vs sort-based)", Run: AggSweep},
	"worstmap":   {ID: "worstmap", Paper: "§3.3 unpursued opportunity: worst-performance maps", Run: WorstMap},
	"systems":    {ID: "systems", Paper: "§3.3 unpursued opportunity: multi-system comparison", Run: SystemsCompare},
	"parallel":   {ID: "parallel", Paper: "§4 roadmap: parallel plan robustness vs partition skew [SD89]", Run: ParallelSweep},
	"regions":    {ID: "regions", Paper: "§3.4: per-plan optimality regions (size, shape, fragmentation)", Run: Regions},
	"regret":     {ID: "regret", Paper: "§3.4 extension: optimizer pick vs oracle — regret and non-robustness maps", Run: RegretExperiment},
	"scoreboard": {ID: "scoreboard", Paper: "§4 goal: the robustness benchmark (ranked plan scores)", Run: ScoreboardExperiment},
	"memsweep":   {ID: "memsweep", Paper: "§3.2 resource dimension: cost vs available memory", Run: MemSweep},
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// fig1..fig10 numerically, then the extensions alphabetically.
		oi, oj := regOrder(out[i]), regOrder(out[j])
		if oi != oj {
			return oi < oj
		}
		return out[i] < out[j]
	})
	return out
}

func regOrder(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return n
	}
	return 1000
}

// Lookup returns the definition for an id.
func Lookup(id string) (Definition, bool) {
	d, ok := registry[id]
	return d, ok
}

// RunAll executes every experiment against one study, in order.
func RunAll(s *Study) []*Artifacts {
	var out []*Artifacts
	for _, id := range IDs() {
		out = append(out, registry[id].Run(s))
	}
	return out
}
