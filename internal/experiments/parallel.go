package experiments

import (
	"fmt"
	"time"

	"robustmap/internal/catalog"
	"robustmap/internal/engine"
	"robustmap/internal/exec"
	"robustmap/internal/iomodel"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
	"robustmap/internal/vis"
)

// ParallelSweep maps the robustness of parallel scan execution against
// partition skew — the paper's §4 roadmap includes "visualizations of
// entire query execution plans including parallel ones", and its related
// work cites Schneider and DeWitt's shared-nothing study [SD89]. The map
// shows, per (worker count, skew) point, the achieved speedup: uniform
// partitions scale near-linearly; skew collapses the makespan toward the
// largest partition.
func ParallelSweep(s *Study) *Artifacts {
	// Reuse System A's loaded table through per-worker contexts.
	sys := s.SysA
	// Rebuild a lightweight catalog view to access the heap.
	clock := simclock.New()
	dev := iomodel.NewDevice(s.Cfg.Engine.IO, clock)
	pool := storage.NewPool(diskOf(sys), dev, clock, 64)
	tbl := tableOf(sys, pool)

	workerCtx := func(int) *exec.Ctx {
		c := simclock.New()
		d := iomodel.NewDevice(s.Cfg.Engine.IO, c)
		p := storage.NewPool(diskOf(sys), d, c, 64)
		return &exec.Ctx{Clock: c, Pool: p, MemoryBudget: 1 << 30}
	}

	pages := tbl.Heap.NumPages()
	workers := []int{1, 2, 4, 8}
	skews := []float64{1.0, 1.5, 2.0, 3.0}

	speedup := make([][]float64, len(workers))
	makespan := make([][]time.Duration, len(workers))
	for i, w := range workers {
		speedup[i] = make([]float64, len(skews))
		makespan[i] = make([]time.Duration, len(skews))
		for j, sk := range skews {
			ranges := exec.SkewedRanges(pages, w, sk)
			// The study's sweep executor also schedules the fragment
			// simulations: virtual results are executor-invariant.
			res := exec.RunParallelOn(s.Executor(), w, workerCtx,
				func(wi int, ctx *exec.Ctx) exec.RowIter {
					return exec.NewRangedTableScan(ctx, tableOf(sys, ctx.Pool), nil, ranges[wi])
				})
			speedup[i][j] = res.Speedup()
			makespan[i][j] = res.Makespan
		}
	}

	checks := []Check{
		{
			Claim: "uniform partitions give near-linear speedup [SD89]",
			Pass:  speedup[2][0] > 3.0 && speedup[3][0] > 5.0,
			Got:   fmt.Sprintf("speedup %.1f at 4 workers, %.1f at 8 (skew 1.0)", speedup[2][0], speedup[3][0]),
		},
		{
			Claim: "partition skew degrades speedup toward the largest partition's share",
			Pass:  speedup[3][3] < speedup[3][0]*0.6,
			Got:   fmt.Sprintf("8-worker speedup %.1f at skew 3.0 vs %.1f uniform", speedup[3][3], speedup[3][0]),
		},
		{
			Claim: "single-worker execution is skew-invariant (the baseline is flat)",
			Pass:  makespan[0][0] > 0 && ratioSpread(makespan[0]) < 1.05,
			Got:   fmt.Sprintf("1-worker makespan spread %.2f across skews", ratioSpread(makespan[0])),
		},
	}

	title := "Parallel scan robustness (§4): speedup vs workers and partition skew"
	csv := "workers\\skew"
	for _, sk := range skews {
		csv += fmt.Sprintf(",%g", sk)
	}
	csv += "\n"
	for i, w := range workers {
		csv += fmt.Sprintf("%d", w)
		for j := range skews {
			csv += fmt.Sprintf(",%.3f", speedup[i][j])
		}
		csv += "\n"
	}

	// Render makespans as series over skew, one line per worker count.
	series := map[string][]time.Duration{}
	for i, w := range workers {
		series[fmt.Sprintf("%d workers", w)] = makespan[i]
	}
	var rowsAxis []float64
	rowsAxis = append(rowsAxis, skews...)
	return &Artifacts{
		ID:      "parallel",
		Title:   title,
		Summary: title + "\n" + renderChecks(checks),
		CSV:     csv,
		ASCII:   vis.LineChartASCII(rowsAxis, series, 72, 18, title),
		SVG:     vis.LineChartSVG(rowsAxis, series, title, "partition skew (geometric factor)", "makespan"),
		Checks:  checks,
	}
}

func ratioSpread(ts []time.Duration) float64 {
	lo, hi := ts[0], ts[0]
	for _, t := range ts[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if lo <= 0 {
		return 1
	}
	return float64(hi) / float64(lo)
}

// diskOf and tableOf reuse a built system's loaded data for the parallel
// experiment's per-worker contexts.
func diskOf(sys *engine.System) *storage.Disk { return sys.Disk() }

func tableOf(sys *engine.System, pool *storage.Pool) *catalog.Table {
	return sys.OpenTable(pool)
}
