package experiments

import (
	"strings"
	"testing"
)

// smallStudy is shared across tests; the 2-D sweep is computed once.
var smallStudy *Study

func study(t testing.TB) *Study {
	if smallStudy == nil {
		s, err := NewStudy(SmallStudyConfig())
		if err != nil {
			t.Fatal(err)
		}
		smallStudy = s
	}
	return smallStudy
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	ids := IDs()
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "adaptive", "aggsweep", "joinsweep", "memsweep",
		"parallel", "regions", "regret", "scoreboard", "sortspill", "systems", "worstmap"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) missing", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func TestAxisHelper(t *testing.T) {
	fr, th := axis(1<<10, 3)
	if len(fr) != 4 || fr[0] != 0.125 || fr[3] != 1 {
		t.Errorf("fractions = %v", fr)
	}
	if th[0] != 128 || th[3] != 1024 {
		t.Errorf("thresholds = %v", th)
	}
	// Tiny tables clamp thresholds to 1 row.
	_, th = axis(4, 6)
	if th[0] != 1 {
		t.Errorf("clamped threshold = %d", th[0])
	}
}

func TestFractionLabels(t *testing.T) {
	got := FractionLabels([]float64{0.25, 0.5, 1})
	want := []string{"2^-2", "2^-1", "2^0"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("labels = %v, want %v", got, want)
		}
	}
}

func TestFigure1ChecksPass(t *testing.T) {
	a := Figure1(study(t))
	if !a.Passed() {
		t.Errorf("figure 1 checks failed:\n%s", a.Summary)
	}
	if !strings.Contains(a.CSV, "A1") || !strings.Contains(a.ASCII, "A1") {
		t.Error("artifacts missing plan data")
	}
	if !strings.HasPrefix(a.SVG, "<svg") {
		t.Error("missing SVG")
	}
}

func TestFigure2ChecksPass(t *testing.T) {
	a := Figure2(study(t))
	if !a.Passed() {
		t.Errorf("figure 2 checks failed:\n%s", a.Summary)
	}
}

func TestLegendFigures(t *testing.T) {
	for _, f := range []func(*Study) *Artifacts{Figure3, Figure6} {
		a := f(nil) // legends need no study
		if !a.Passed() {
			t.Errorf("%s checks failed:\n%s", a.ID, a.Summary)
		}
		if !strings.HasPrefix(a.SVG, "<svg") || a.ASCII == "" {
			t.Errorf("%s artifacts incomplete", a.ID)
		}
	}
}

func TestTwoDimensionalFigures(t *testing.T) {
	s := study(t)
	for _, f := range []func(*Study) *Artifacts{Figure4, Figure5, Figure7, Figure8, Figure9, Figure10} {
		a := f(s)
		t.Run(a.ID, func(t *testing.T) {
			if !a.Passed() {
				t.Errorf("checks failed:\n%s", a.Summary)
			}
			if a.CSV == "" || a.ASCII == "" || !strings.HasPrefix(a.SVG, "<svg") {
				t.Error("artifacts incomplete")
			}
			if a.ID != "fig10" && a.PPM == "" {
				t.Error("missing PPM")
			}
		})
	}
}

func TestSortSpillChecksPass(t *testing.T) {
	a := SortSpill(study(t))
	if !a.Passed() {
		t.Errorf("sortspill checks failed:\n%s", a.Summary)
	}
	if !strings.Contains(a.CSV, "graceful_s") {
		t.Error("missing CSV series")
	}
}

func TestJoinSweepChecksPass(t *testing.T) {
	a := JoinSweep(study(t))
	if !a.Passed() {
		t.Errorf("joinsweep checks failed:\n%s", a.Summary)
	}
}

func TestAggSweepChecksPass(t *testing.T) {
	a := AggSweep(study(t))
	if !a.Passed() {
		t.Errorf("aggsweep checks failed:\n%s", a.Summary)
	}
}

func TestRegretChecksPass(t *testing.T) {
	a := RegretExperiment(study(t))
	if !a.Passed() {
		t.Errorf("regret checks failed:\n%s", a.Summary)
	}
	if !strings.Contains(a.CSV, "non_robust") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(a.JSON, "\"regret_2d\"") || !strings.Contains(a.JSON, "\"candidates\"") {
		t.Error("grids JSON missing the regret overlay or the candidate list")
	}
	if !strings.Contains(a.ASCII, "non-robust cells") {
		t.Error("missing non-robust region rendering")
	}
	if a.PPM == "" || a.SVG == "" {
		t.Error("regret map must render as SVG and PPM")
	}
	if !strings.Contains(a.Summary, "pick share per candidate") {
		t.Error("summary missing the pick ranking")
	}
}

func TestWorstMapChecksPass(t *testing.T) {
	a := WorstMap(study(t))
	if !a.Passed() {
		t.Errorf("worstmap checks failed:\n%s", a.Summary)
	}
	if !strings.Contains(a.Summary, "WORST choice") {
		t.Error("missing danger ranking")
	}
}

func TestSystemsCompareChecksPass(t *testing.T) {
	a := SystemsCompare(study(t))
	if !a.Passed() {
		t.Errorf("systems checks failed:\n%s", a.Summary)
	}
	for _, sys := range []string{"A", "B", "C"} {
		if !strings.Contains(a.Summary, sys) {
			t.Errorf("summary missing system %s", sys)
		}
	}
}

func TestRunAllProducesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covered piecewise above")
	}
	arts := RunAll(study(t))
	if len(arts) != len(IDs()) {
		t.Fatalf("RunAll produced %d artifacts", len(arts))
	}
	for _, a := range arts {
		if a.Summary == "" {
			t.Errorf("%s has no summary", a.ID)
		}
	}
}

func TestParallelSweepChecksPass(t *testing.T) {
	a := ParallelSweep(study(t))
	if !a.Passed() {
		t.Errorf("parallel checks failed:\n%s", a.Summary)
	}
	if !strings.Contains(a.CSV, "workers") {
		t.Error("missing CSV header")
	}
}

func TestRegionsChecksPass(t *testing.T) {
	a := Regions(study(t))
	if !a.Passed() {
		t.Errorf("regions checks failed:\n%s", a.Summary)
	}
	if !strings.Contains(a.CSV, "areaFraction") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(a.ASCII, "optimal on") {
		t.Error("missing region renderings")
	}
}

func TestScoreboardChecksPass(t *testing.T) {
	a := ScoreboardExperiment(study(t))
	if !a.Passed() {
		t.Errorf("scoreboard checks failed:\n%s", a.Summary)
	}
	if !strings.Contains(a.CSV, "meanDanger") {
		t.Error("missing CSV header")
	}
}

func TestMemSweepChecksPass(t *testing.T) {
	a := MemSweep(study(t))
	if !a.Passed() {
		t.Errorf("memsweep checks failed:\n%s", a.Summary)
	}
}
