package experiments

import (
	"reflect"
	"testing"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/plan"
)

// tinyStudies builds two studies over the same (reduced) dataset, one
// serial and one with 4 sweep workers. Separate studies keep the lazily
// cached 2-D maps independent.
func tinyStudies(t *testing.T) (serial, parallel *Study) {
	t.Helper()
	mk := func(parallelism int) *Study {
		cfg := SmallStudyConfig()
		cfg.Rows = 1 << 14
		cfg.Engine.Rows = cfg.Rows
		cfg.MaxExp1D = 6
		cfg.MaxExp2D = 5
		cfg.Parallelism = parallelism
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return mk(1), mk(4)
}

// TestSweepDeterminismSerialVsParallel is the end-to-end determinism check
// of the concurrent sweep executor: the full 13-plan engine-backed maps —
// times, rows, plan order — and the analyses derived from them (landmarks,
// optimality regions, scoreboard) are identical whether cells are measured
// serially or by a worker pool. Run with -race to also verify the
// engine-sharing contract.
func TestSweepDeterminismSerialVsParallel(t *testing.T) {
	ser, par := tinyStudies(t)

	m1s := ser.Sweep1D(plan.Figure1Plans())
	m1p := par.Sweep1D(plan.Figure1Plans())
	if !reflect.DeepEqual(m1s, m1p) {
		t.Fatal("1-D maps differ between serial and parallel executors")
	}
	cfg := core.DefaultLandmarkConfig()
	for _, id := range m1s.Plans {
		ls := core.FindLandmarks(m1s.Rows, m1s.Series(id), cfg)
		lp := core.FindLandmarks(m1p.Rows, m1p.Series(id), cfg)
		if !reflect.DeepEqual(ls, lp) {
			t.Errorf("landmarks differ for plan %s", id)
		}
	}

	m2s := ser.Map2D()
	m2p := par.Map2D()
	if !reflect.DeepEqual(m2s, m2p) {
		t.Fatal("2-D maps differ between serial and parallel executors")
	}
	tol := core.Tolerance{Absolute: 100 * time.Millisecond, Relative: 1.01}
	if !reflect.DeepEqual(core.ComputeOptimality(m2s, tol), core.ComputeOptimality(m2p, tol)) {
		t.Error("optimality maps differ")
	}
	if !reflect.DeepEqual(core.Scoreboard(m2s, m2s.Plans), core.Scoreboard(m2p, m2p.Plans)) {
		t.Error("scoreboards differ")
	}
}

// TestStudyExecutorSelection pins the Parallelism knob's mapping.
func TestStudyExecutorSelection(t *testing.T) {
	s := &Study{Cfg: StudyConfig{Parallelism: 0}}
	if _, ok := s.Executor().(core.SerialExecutor); !ok {
		t.Error("Parallelism 0 should select the serial executor")
	}
	s.Cfg.Parallelism = 4
	if ex, ok := s.Executor().(core.ParallelExecutor); !ok || ex.Workers != 4 {
		t.Errorf("Parallelism 4 selected %#v", s.Executor())
	}
}
