package experiments

import (
	"fmt"
	"reflect"

	"robustmap/internal/core"
	"robustmap/internal/vis"
)

// AdaptiveSweepExperiment demonstrates the adaptive multi-resolution
// sweeper on the full 13-plan 2-D study: it runs the exhaustive sweep and
// the adaptive sweep over the same grid and verifies the equivalence
// contract — the adaptive sweep must measure at most 40% of the cells
// while reproducing the exhaustive winner grid, result-size grid, and
// map-scale landmark sets exactly, with every measured cell bit-identical.
// The rendered map is the winner map with the refinement mesh overlaid:
// dotted cells were measured, plain cells interpolated.
func AdaptiveSweepExperiment(s *Study) *Artifacts {
	fr, th := axis(s.Cfg.Rows, s.Cfg.MaxExp2D)
	grid := core.Grid2D(fr, fr, th, th)
	run2D := func(opts ...core.SweepOption) (*core.Map2D, *core.Mesh2D) {
		opts = append(append([]core.SweepOption{grid}, s.sweepOptions()...), opts...)
		m, mesh, err := core.NewSweep(s.AllSources(), opts...).Run2D(s.Context())
		if err != nil {
			panic(studyInterrupt{err})
		}
		return m, mesh
	}
	var exhaustive, adaptive *core.Map2D
	var mesh *core.Mesh2D
	if s.Cfg.Refine {
		// The study's shared map is itself adaptive — reuse it and its
		// mesh, and run the exhaustive baseline fresh (with the
		// measurement cache on, that only measures the skipped cells).
		adaptive, mesh = s.Map2D(), s.Mesh2D()
		exhaustive, _ = run2D()
	} else {
		exhaustive = s.Map2D()
		adaptive, mesh = run2D(core.WithAdaptive(s.adaptiveConfig()))
	}

	lcfg := core.MapLandmarkConfig()
	landmarksEqual := true
	for _, id := range exhaustive.Plans {
		if !reflect.DeepEqual(adaptive.LandmarkGrid(id, lcfg), exhaustive.LandmarkGrid(id, lcfg)) {
			landmarksEqual = false
			break
		}
	}
	measuredExact := true
	for p := range exhaustive.Plans {
		for i := range th {
			for j := range th {
				if mesh.PlanPoints[p][i][j] &&
					adaptive.Times[p][i][j] != exhaustive.Times[p][i][j] {
					measuredExact = false
				}
			}
		}
	}

	frac := mesh.MeasuredFraction()
	checks := []Check{
		{
			Claim: "adaptive sweep measures at most 40% of the exhaustive cells",
			Pass:  frac <= 0.40,
			Got: fmt.Sprintf("%d of %d cells (%.1f%%; refine %d, landmark %d, guard %d)",
				mesh.MeasuredCells, mesh.TotalCells, frac*100,
				mesh.RefineCells, mesh.LandmarkCells, mesh.GuardCells),
		},
		{
			Claim: "winner grid identical to the exhaustive sweep",
			Pass:  reflect.DeepEqual(adaptive.WinnerGrid(), exhaustive.WinnerGrid()),
			Got:   "compared per point over all 13 plans",
		},
		{
			Claim: "result-size grid identical (oracle-backed)",
			Pass:  reflect.DeepEqual(adaptive.Rows, exhaustive.Rows),
			Got:   "compared per point",
		},
		{
			Claim: "map-scale landmark sets identical for all 13 plans",
			Pass:  landmarksEqual,
			Got:   "rows and columns, MapLandmarkConfig granularity",
		},
		{
			Claim: "every measured cell is bit-identical to the exhaustive value",
			Pass:  measuredExact,
			Got:   fmt.Sprintf("%d measured cells compared", mesh.MeasuredCells),
		},
	}

	// CSV: per-plan measured point counts plus the phase breakdown.
	csv := "plan,measured_points,total_points\n"
	for p, id := range adaptive.Plans {
		n := 0
		for i := range mesh.PlanPoints[p] {
			for j := range mesh.PlanPoints[p][i] {
				if mesh.PlanPoints[p][i][j] {
					n++
				}
			}
		}
		csv += fmt.Sprintf("%s,%d,%d\n", id, n, len(th)*len(th))
	}
	csv += fmt.Sprintf("TOTAL,%d,%d\n", mesh.MeasuredCells, mesh.TotalCells)

	// Render the winner map with the mesh overlay. Winner indexes exceed
	// the paper palettes, so bin them by owning system (A, B, C) — the
	// region structure the paper's figures trace.
	winner := adaptive.WinnerGrid()
	bins := make([][]int, len(winner))
	for i := range winner {
		bins[i] = make([]int, len(winner[i]))
		for j, w := range winner[i] {
			switch {
			case w < 7: // A1..A7
				bins[i][j] = 1
			case w < 11: // B1..B4
				bins[i][j] = 3
			default: // C1, C2
				bins[i][j] = 4
			}
		}
	}
	labels := FractionLabels(fr)
	title := "Adaptive sweep: winner regions with refinement mesh"
	binLabels := []string{"", "System A wins", "", "System B wins", "System C wins"}
	svg := vis.HeatMapSVGMesh(bins, vis.PaletteAbsolute, mesh.Points, labels, labels,
		title, "selectivity b", "selectivity a", binLabels)
	ascii := vis.HeatMapASCII(bins, vis.GlyphsAbsolute, labels, labels, title,
		"winner", binLabels) +
		"\nmeasured points (#) vs interpolated (.):\n" +
		vis.RegionASCII(mesh.Points, labels, "refinement mesh")

	summary := fmt.Sprintf(
		"Adaptive multi-resolution sweep of the 13-plan 2-D study\n"+
			"measured %d of %d cells (%.1f%%) in %d rounds\n%s",
		mesh.MeasuredCells, mesh.TotalCells, frac*100, mesh.Rounds,
		renderChecks(checks))

	return &Artifacts{
		ID:      "adaptive",
		Title:   title,
		Summary: summary,
		CSV:     csv,
		ASCII:   ascii,
		SVG:     svg,
		PPM:     vis.HeatMapPPM(bins, vis.PaletteAbsolute, 8),
		Checks:  checks,
	}
}
