package experiments

import (
	"fmt"
	"strings"

	"robustmap/internal/core"
)

// ScoreboardExperiment realizes §4's end goal — "a benchmark that focuses
// on robustness of query execution" — as a ranked scoreboard over the
// thirteen plans. A nightly run diffs today's scoreboard against
// yesterday's (core.CompareScoreboards) to "track progress against these
// weaknesses and permit daily regression testing".
func ScoreboardExperiment(s *Study) *Artifacts {
	m := s.Map2D()
	board := core.Scoreboard(m, systemABaseline())

	byPlan := map[string]core.PlanScore{}
	for _, ps := range board {
		byPlan[ps.Plan] = ps
	}

	checks := []Check{
		{
			// Figure 8's architecture beats Figure 7's plan on robustness.
			Claim: "the bitmap-fetch two-column plan (B1) outscores the single-index plan (A2)",
			Pass:  byPlan["B1"].Score > byPlan["A2"].Score,
			Got:   fmt.Sprintf("B1=%.3f A2=%.3f", byPlan["B1"].Score, byPlan["A2"].Score),
		},
		// The top of the board is a near-tie, so the claim needs exact
		// per-cell times; interpolated interiors can flip it.
		needsExactCells(s, Check{
			// Figure 9's conclusion: MDAM covering plans are the robust ones.
			Claim: "a covering MDAM plan tops the scoreboard",
			Pass:  board[0].Plan == "C1" || board[0].Plan == "C2",
			Got:   fmt.Sprintf("top plan %s (%.3f)", board[0].Plan, board[0].Score),
		}),
		{
			Claim: "scores are a strict ranking (no degenerate all-equal outcome)",
			Pass:  board[0].Score > board[len(board)-1].Score,
			Got:   fmt.Sprintf("top %.3f vs bottom %.3f", board[0].Score, board[len(board)-1].Score),
		},
	}

	title := "Robustness scoreboard (§4 benchmark): plans ranked by composite score"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, renderChecks(checks))
	fmt.Fprintf(&b, "%-8s %7s %9s %11s %8s %8s %8s\n",
		"plan", "score", "optimal%", "within10x%", "worst", "p95", "danger")
	for _, ps := range board {
		fmt.Fprintf(&b, "%-8s %7.3f %8.0f%% %10.0f%% %8.1f %8.1f %8.2f\n",
			ps.Plan, ps.Score, ps.OptimalFraction*100, ps.WithinFactor10*100,
			ps.Worst, ps.P95, ps.MeanDanger)
	}

	csv := "plan,score,optimalFraction,withinFactor10,worst,p95,meanDanger\n"
	for _, ps := range board {
		csv += fmt.Sprintf("%s,%.4f,%.4f,%.4f,%.2f,%.2f,%.4f\n",
			ps.Plan, ps.Score, ps.OptimalFraction, ps.WithinFactor10,
			ps.Worst, ps.P95, ps.MeanDanger)
	}
	return &Artifacts{
		ID:      "scoreboard",
		Title:   title,
		Summary: b.String(),
		CSV:     csv,
		ASCII:   b.String(),
		Checks:  checks,
	}
}
