// Package experiments defines one regenerable experiment per table/figure
// of the paper, plus the §4 sort-spill prediction made concrete. Each
// experiment produces Artifacts: the underlying map data, a CSV, an ASCII
// rendering, an SVG, and (for 2-D maps) a PPM bitmap, along with a textual
// summary of the paper's qualitative claims checked against the measured
// data.
package experiments

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/engine"
	"robustmap/internal/plan"
	"robustmap/internal/service"
)

// StudyConfig scales the whole study.
type StudyConfig struct {
	// Rows is the table cardinality (the paper used ~60M TPC-H lineitem
	// rows; the default here is 2^17 — the maps' shapes depend on
	// selectivity fractions, not absolute size).
	Rows int64
	// MaxExp1D sets the 1-D sweep range: fractions 2^-MaxExp1D … 2^0
	// (the paper's Figure 1 runs 2^-16 … 2^0).
	MaxExp1D int
	// MaxExp2D sets each 2-D axis: fractions 2^-MaxExp2D … 2^0, giving a
	// (MaxExp2D+1)² grid.
	MaxExp2D int
	// Parallelism is the sweep worker count: 0 or 1 measure serially (the
	// paper's original loop), higher values fan (plan, point) cells out
	// over that many goroutines, and negative values use every available
	// CPU. Map contents are identical at every setting — measurements are
	// virtual-time and per-cell isolated — only wall-clock time changes.
	Parallelism int
	// Refine switches the study's sweeps to the adaptive multi-resolution
	// sweeper: a coarse pass plus quadtree refinement near winner
	// boundaries and rough cost curves, with constant-region interiors
	// interpolated. Measured cells are bit-identical to the exhaustive
	// sweep's; winner and landmark maps match it exactly (the equivalence
	// tests pin this for the 13-plan study).
	Refine bool
	// RefineConfig overrides the adaptive sweeper's tuning when Refine is
	// set. The zero value means core.DefaultAdaptiveConfig(). The
	// ResultSize oracle is always installed by the study.
	RefineConfig *core.AdaptiveConfig
	// CacheSize enables the shared measurement cache: measured cells are
	// memoized across sweeps (1-D slices, refinement passes, repeated
	// studies), keyed by (system, plan, point). Positive values bound the
	// entry count with LRU eviction, -1 means unbounded, 0 disables.
	CacheSize int
	// Progress, when set, observes every study sweep: it receives
	// throttled core.Progress snapshots (measured/interpolated/total cell
	// counts) plus a final report per sweep. Purely observational — map
	// contents are unaffected.
	Progress core.ProgressFunc
	// Service, when set, executes the study's standard-axis sweeps — the
	// shared 13-plan 2-D map and the default 1-D figure sweeps — as
	// submitted jobs on that service instead of measuring in process: an
	// in-process service (service.NewLocal), or a remote robustmapd via
	// the httpapi client, interchangeably. Requests carry the study's
	// Rows, axis, Parallelism, and Refine; the service measures on its
	// own engine at the default profile — the profile DefaultStudyConfig
	// and SmallStudyConfig use — and determinism makes the returned maps
	// bit-identical to in-process sweeps. Sweeps a request cannot
	// express faithfully stay in process automatically: studies with a
	// customized Engine or RefineConfig, experiments with bespoke
	// parameter spaces (memory sweeps, sort-spill curves), and 1-D plan
	// lists from outside System A. A service failure other than the
	// sweep's own cancellation also degrades to in-process measurement —
	// a down daemon slows a study, never fails or crashes it. Cancelling
	// the sweep context cancels the submitted job, not just the wait.
	Service service.Service
	// Engine carries pool size, memory budget, and the I/O profile.
	Engine engine.Config
}

// DefaultStudyConfig returns the full-scale configuration used by the
// benchmark harness and the CLI. The sweep ranges mirror the paper's:
// Figure 1 runs selectivities 2^-16 … 2^0; the 2-D grids must reach
// fractions where point lookups beat the table scan (below ~2^-12, the
// seek/transfer break-even), or the maps lose the regions where index
// plans win.
func DefaultStudyConfig() StudyConfig {
	cfg := engine.DefaultConfig()
	return StudyConfig{
		Rows:     cfg.Rows, // 2^17
		MaxExp1D: 16,
		MaxExp2D: 14,
		Engine:   cfg,
	}
}

// SmallStudyConfig returns the unit-test configuration: same table scale
// as the default (the qualitative shapes need it) with slightly coarser
// grids.
func SmallStudyConfig() StudyConfig {
	cfg := engine.DefaultConfig()
	return StudyConfig{
		Rows:     cfg.Rows,
		MaxExp1D: 14,
		MaxExp2D: 14,
		Engine:   cfg,
	}
}

// Study holds the three built systems and lazily computed sweeps shared by
// the figures (the 2-D figures all derive from one 13-plan sweep).
type Study struct {
	Cfg  StudyConfig
	SysA *engine.System
	SysB *engine.System
	SysC *engine.System

	ctx    context.Context    // sweep context; nil means Background
	cache  *core.MeasureCache // shared across sweeps; nil when disabled
	map2D  *core.Map2D        // all 13 plans over the 2-D grid; lazily built
	mesh2D *core.Mesh2D       // refinement mesh of map2D when Refine is set
}

// studyInterrupt carries a sweep cancellation through the figure
// functions, whose signatures predate context plumbing; RunContext
// recovers it. (The sweep core uses the same panic discipline for its
// row-count cross-checks.)
type studyInterrupt struct{ err error }

// SetContext installs the context the study's legacy-signature sweep
// accessors (Sweep1D, Map2D) run under; nil restores context.Background().
// When the context is cancelled mid-sweep those accessors panic with an
// internal marker that Definition.RunContext converts back into the
// context's error — use RunSweep or Map2DContext for plain error returns.
// Studies are confined to one goroutine at a time, as before.
func (s *Study) SetContext(ctx context.Context) { s.ctx = ctx }

// Context returns the study's sweep context (Background by default).
func (s *Study) Context() context.Context {
	if s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// NewStudy builds the three systems over the shared dataset parameters.
func NewStudy(cfg StudyConfig) (*Study, error) {
	ecfg := cfg.Engine
	ecfg.Rows = cfg.Rows
	a, err := engine.SystemA(ecfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: build system A: %w", err)
	}
	b, err := engine.SystemB(ecfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: build system B: %w", err)
	}
	c, err := engine.SystemC(ecfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: build system C: %w", err)
	}
	s := &Study{Cfg: cfg, SysA: a, SysB: b, SysC: c}
	if cfg.CacheSize != 0 {
		// NewMeasureCache treats negative capacities as unbounded.
		s.cache = core.NewMeasureCache(cfg.CacheSize)
	}
	return s, nil
}

// source adapts an engine plan to a core.PlanSource. Measurements go
// through the system's session pool, so the source is safe for concurrent
// sweep workers and reuses sessions across cells. When the study has a
// measurement cache, the source consults it first, keyed by the system
// name.
func (s *Study) source(sys *engine.System, p plan.Plan) core.PlanSource {
	src := core.PlanSource{
		ID: p.ID,
		Measure: func(ta, tb int64) core.Measurement {
			r := sys.RunShared(p, plan.Query{TA: ta, TB: tb})
			return core.Measurement{Time: r.Time, Rows: r.Rows}
		},
	}
	return s.cache.Wrap(sys.Name, src)
}

// CacheStats reports the shared measurement cache's counters; the zero
// value when no cache is configured.
func (s *Study) CacheStats() core.CacheStats {
	if s.cache == nil {
		return core.CacheStats{}
	}
	return s.cache.Stats()
}

// needsExactCells guards a check that requires exhaustive per-cell
// accuracy beyond the adaptive sweep's contract (exact winner, Rows, and
// map-scale landmark maps). Under a refined study the claim is reported
// as skipped rather than evaluated against interpolated interiors.
func needsExactCells(s *Study, c Check) Check {
	if s.Cfg.Refine {
		return Check{Claim: c.Claim, Pass: true,
			Got: "skipped: needs exhaustive per-cell accuracy (study ran with Refine)"}
	}
	return c
}

// adaptiveConfig assembles the study's adaptive sweeper tuning, installing
// the engine-backed result-size oracle (all systems share one dataset, so
// System A answers for every plan).
func (s *Study) adaptiveConfig() core.AdaptiveConfig {
	cfg := core.DefaultAdaptiveConfig()
	if s.Cfg.RefineConfig != nil {
		cfg = *s.Cfg.RefineConfig
	}
	cfg.ResultSize = func(ta, tb int64) int64 {
		return s.SysA.ResultSize(plan.Query{TA: ta, TB: tb})
	}
	return cfg
}

// Executor returns the sweep executor the study's Parallelism selects.
func (s *Study) Executor() core.SweepExecutor {
	return core.NewExecutor(s.Cfg.Parallelism)
}

// AllSources returns the thirteen plans bound to their systems.
func (s *Study) AllSources() []core.PlanSource {
	var out []core.PlanSource
	for _, p := range plan.SystemAPlans() {
		out = append(out, s.source(s.SysA, p))
	}
	for _, p := range plan.SystemBPlans() {
		out = append(out, s.source(s.SysB, p))
	}
	for _, p := range plan.SystemCPlans() {
		out = append(out, s.source(s.SysC, p))
	}
	return out
}

// axis returns the fractions 2^-maxExp … 2^0 and the matching thresholds
// — the shared core construction behind CLI grids and service requests,
// so study grids can never silently diverge from either.
func axis(rows int64, maxExp int) (fractions []float64, thresholds []int64) {
	return core.SweepAxis(rows, maxExp)
}

// sweepOptions assembles the study-wide options every sweep shares: the
// executor the Parallelism knob selects and the configured progress
// observer. (The measurement cache is not an option here — study sources
// are pre-wrapped with per-system cache scopes.)
func (s *Study) sweepOptions() []core.SweepOption {
	opts := []core.SweepOption{core.WithExecutor(s.Executor())}
	if s.Cfg.Progress != nil {
		opts = append(opts, core.WithProgress(s.Cfg.Progress))
	}
	return opts
}

// serviceEligible reports whether the study's sweeps mean the same
// thing on a service: a job request carries Rows/MaxExp/Parallelism/
// Refine but no engine profile (the service measures on its own engine
// at the default profile), so a study with a customized Engine must
// keep measuring in process rather than silently return maps from a
// different machine model.
func (s *Study) serviceEligible() bool {
	if s.Cfg.Service == nil {
		return false
	}
	if s.Cfg.RefineConfig != nil {
		// Custom adaptive tuning cannot be serialized either; the
		// service refines with the default configuration.
		return false
	}
	cfg := s.Cfg.Engine
	def := engine.DefaultConfig()
	cfg.Rows = def.Rows // Rows travels in the request
	return reflect.DeepEqual(cfg, def)
}

// serviceFallback decides — in one place, for every submitted study
// sweep — whether a service error should degrade to in-process
// measurement: yes for anything except the sweep's own cancellation
// (unreachable daemon, refused admission), with a stderr note so a
// user who pointed the study at a daemon (e.g. a mistyped -server URL)
// sees that the work ran locally. Determinism makes the fallback maps
// identical, and the legacy panic-discipline entry points (Sweep1D,
// Map2D, RunExperiment) predate error returns, so a down daemon must
// not start crashing them.
func serviceFallback(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	fmt.Fprintf(os.Stderr, "robustmap: study service sweep failed (%v); measuring in process\n", err)
	return true
}

// allSystemA reports whether every plan belongs to System A — the
// precondition for a 1-D study sweep to mean the same thing in process
// (where RunSweep measures on SysA) and on a service (where plans
// resolve to their catalog systems).
func allSystemA(plans []plan.Plan) bool {
	for _, p := range plans {
		if p.System != "A" {
			return false
		}
	}
	return true
}

// submit runs one standard-axis sweep as a job on the study's Service;
// see StudyConfig.Service for the contract.
func (s *Study) submit(ctx context.Context, ids []string, grid2D bool,
	maxExp int, refine bool) (*core.SweepResult, error) {
	res, err := service.Run(ctx, s.Cfg.Service, service.Request{
		Plans:       ids,
		Rows:        s.Cfg.Rows,
		MaxExp:      maxExp,
		Grid2D:      grid2D,
		Parallelism: s.Cfg.Parallelism,
		Refine:      refine,
	}, s.Cfg.Progress)
	if err != nil {
		return nil, err
	}
	return &core.SweepResult{
		Map1D: res.Map1D, Mesh1D: res.Mesh1D,
		Map2D: res.Map2D, Mesh2D: res.Mesh2D,
	}, nil
}

// RunSweep runs an ad-hoc sweep of the given plans through the unified
// options API, under ctx: by default a 1-D sweep of System A's plans over
// the study's 1-D axis on the study's executor, with any of the defaults
// overridable by trailing options (e.g. core.Grid2D for a custom grid, or
// core.WithAdaptive to refine). Sources are cache-wrapped when the study
// has a measurement cache. Cancelling ctx returns ctx.Err() with no
// partial map. On a study with a Service, the no-options form of a
// System-A plan list submits the sweep as a job instead; anything else
// stays in process — trailing options carry function values no request
// can serialize, and the in-process contract measures every listed plan
// on System A while a service resolves plans to their catalog systems,
// so only System-A lists (every 1-D figure sweep) mean the same thing
// on both paths.
func (s *Study) RunSweep(ctx context.Context, plans []plan.Plan,
	opts ...core.SweepOption) (*core.SweepResult, error) {
	if s.serviceEligible() && len(opts) == 0 && allSystemA(plans) {
		ids := make([]string, len(plans))
		for i, p := range plans {
			ids[i] = p.ID
		}
		res, err := s.submit(ctx, ids, false, s.Cfg.MaxExp1D, false)
		if !serviceFallback(ctx, err) {
			return res, err
		}
		// Degraded: measure in process below.
	}
	fr, th := axis(s.Cfg.Rows, s.Cfg.MaxExp1D)
	var sources []core.PlanSource
	for _, p := range plans {
		sources = append(sources, s.source(s.SysA, p))
	}
	base := append([]core.SweepOption{core.Grid1D(fr, th)}, s.sweepOptions()...)
	return core.NewSweep(sources, append(base, opts...)...).Run(ctx)
}

// Sweep1D runs the given plans over the study's 1-D axis on System A,
// scheduled by the study's executor. Refine deliberately does not apply
// here: the 1-D figure sweeps are a few dozen cells (the expense lives
// in the shared 2-D map), and the 1-D figures make noise-scale landmark
// claims that need exhaustive measurement. Use RunSweep with
// core.WithAdaptive for adaptive 1-D sweeps.
func (s *Study) Sweep1D(plans []plan.Plan) *core.Map1D {
	res, err := s.RunSweep(s.Context(), plans)
	if err != nil {
		panic(studyInterrupt{err})
	}
	return res.Map1D
}

// Map2DContext returns the shared 13-plan 2-D sweep and (when Refine is
// set) its mesh, computing them on first use under ctx with the study's
// executor. This is the expensive part of the study: (MaxExp2D+1)² points
// × 13 plans — unless Refine skips the redundant ones. On cancellation it
// returns ctx.Err() and leaves the map uncomputed, so a later call can
// retry.
func (s *Study) Map2DContext(ctx context.Context) (*core.Map2D, *core.Mesh2D, error) {
	// Cancellation applies to cache hits too: a caller that was just
	// interrupted should not receive the cached map as a success.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if s.map2D == nil {
		var (
			res *core.SweepResult
			err error
		)
		submitted := false
		if s.serviceEligible() {
			var ids []string
			for _, p := range plan.AllPlans() {
				ids = append(ids, p.ID)
			}
			submitted = true
			res, err = s.submit(ctx, ids, true, s.Cfg.MaxExp2D, s.Cfg.Refine)
		}
		if !submitted || serviceFallback(ctx, err) {
			fr, th := axis(s.Cfg.Rows, s.Cfg.MaxExp2D)
			opts := append([]core.SweepOption{core.Grid2D(fr, fr, th, th)}, s.sweepOptions()...)
			if s.Cfg.Refine {
				opts = append(opts, core.WithAdaptive(s.adaptiveConfig()))
			}
			res, err = core.NewSweep(s.AllSources(), opts...).Run(ctx)
		}
		if err != nil {
			return nil, nil, err
		}
		s.map2D, s.mesh2D = res.Map2D, res.Mesh2D
	}
	return s.map2D, s.mesh2D, nil
}

// Map2D returns the shared 13-plan 2-D sweep, computing it on first use
// under the study's context (see Map2DContext).
func (s *Study) Map2D() *core.Map2D {
	m, _, err := s.Map2DContext(s.Context())
	if err != nil {
		panic(studyInterrupt{err})
	}
	return m
}

// Mesh2D returns the refinement mesh of the shared 2-D sweep: nil unless
// the study ran with Refine set.
func (s *Study) Mesh2D() *core.Mesh2D {
	s.Map2D()
	return s.mesh2D
}

// FractionLabels renders axis fractions as the paper labels them (2^-k).
func FractionLabels(fracs []float64) []string {
	out := make([]string, len(fracs))
	for i, f := range fracs {
		k := 0
		for ff := f; ff < 1; ff *= 2 {
			k++
		}
		if k == 0 {
			out[i] = "2^0"
		} else {
			out[i] = fmt.Sprintf("2^-%d", k)
		}
	}
	return out
}

// csv1D renders a Map1D as CSV: fraction, rows, one column per plan
// (seconds).
func csv1D(m *core.Map1D) string {
	s := "fraction,rows"
	for _, p := range m.Plans {
		s += "," + p
	}
	s += "\n"
	for i := range m.Thresholds {
		s += fmt.Sprintf("%g,%d", m.Fractions[i], m.Rows[i])
		for pi := range m.Plans {
			s += fmt.Sprintf(",%.6f", m.Times[pi][i].Seconds())
		}
		s += "\n"
	}
	return s
}

// csv2DDur renders one plan's 2-D duration grid as CSV.
func csv2DDur(m *core.Map2D, grid [][]time.Duration) string {
	s := "fracA\\fracB"
	for _, f := range m.FracB {
		s += fmt.Sprintf(",%g", f)
	}
	s += "\n"
	for i, f := range m.FracA {
		s += fmt.Sprintf("%g", f)
		for j := range m.FracB {
			s += fmt.Sprintf(",%.6f", grid[i][j].Seconds())
		}
		s += "\n"
	}
	return s
}

// csv2DQuot renders a quotient grid as CSV.
func csv2DQuot(m *core.Map2D, grid [][]float64) string {
	s := "fracA\\fracB"
	for _, f := range m.FracB {
		s += fmt.Sprintf(",%g", f)
	}
	s += "\n"
	for i, f := range m.FracA {
		s += fmt.Sprintf("%g", f)
		for j := range m.FracB {
			s += fmt.Sprintf(",%.3f", grid[i][j])
		}
		s += "\n"
	}
	return s
}
