package simclock

import (
	"strings"
	"testing"
	"time"
)

func TestNewStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, 3*time.Millisecond)
	c.Advance(AccountRandIO, 5*time.Millisecond)
	c.Advance(AccountCPU, 2*time.Millisecond)
	if got, want := c.Now(), 10*time.Millisecond; got != want {
		t.Errorf("Now() = %v, want %v", got, want)
	}
	if got, want := c.Spent(AccountCPU), 5*time.Millisecond; got != want {
		t.Errorf("Spent(cpu) = %v, want %v", got, want)
	}
	if got, want := c.Spent(AccountRandIO), 5*time.Millisecond; got != want {
		t.Errorf("Spent(rand io) = %v, want %v", got, want)
	}
}

func TestAdvanceZeroIsAllowed(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, 0)
	if c.Now() != 0 {
		t.Errorf("Now() = %v after zero advance, want 0", c.Now())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	New().Advance(AccountCPU, -time.Nanosecond)
}

func TestFreezePreventsAdvance(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, time.Millisecond)
	c.Freeze()
	if !c.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on advance after Freeze")
		}
	}()
	c.Advance(AccountCPU, time.Millisecond)
}

func TestResetClearsEverything(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, time.Second)
	c.Freeze()
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Now() = %v after Reset, want 0", c.Now())
	}
	if c.Frozen() {
		t.Error("Frozen() = true after Reset")
	}
	if len(c.Accounts()) != 0 {
		t.Errorf("Accounts() = %v after Reset, want empty", c.Accounts())
	}
	c.Advance(AccountCPU, time.Millisecond) // must not panic
}

func TestAccountsOmitsZeroEntries(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, 0)
	c.Advance(AccountSeqIO, time.Millisecond)
	accts := c.Accounts()
	if _, ok := accts[AccountCPU]; ok {
		t.Error("Accounts() contains zero-valued cpu entry")
	}
	if accts[AccountSeqIO] != time.Millisecond {
		t.Errorf("Accounts()[seq io] = %v, want 1ms", accts[AccountSeqIO])
	}
}

func TestAccountsReturnsCopy(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, time.Millisecond)
	accts := c.Accounts()
	accts[AccountCPU] = 42 * time.Hour
	if c.Spent(AccountCPU) != time.Millisecond {
		t.Error("mutating Accounts() result affected the clock")
	}
}

func TestBreakdownSortedByExpenditure(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, 1*time.Millisecond)
	c.Advance(AccountRandIO, 9*time.Millisecond)
	s := c.Breakdown()
	if !strings.HasPrefix(s, "total 10ms") {
		t.Errorf("Breakdown() = %q, want prefix 'total 10ms'", s)
	}
	ioIdx := strings.Index(s, string(AccountRandIO))
	cpuIdx := strings.Index(s, string(AccountCPU))
	if ioIdx < 0 || cpuIdx < 0 || ioIdx > cpuIdx {
		t.Errorf("Breakdown() = %q: want io.random before cpu", s)
	}
}

func TestBreakdownDeterministicOnTies(t *testing.T) {
	mk := func() string {
		c := New()
		c.Advance(AccountCPU, time.Millisecond)
		c.Advance(AccountRandIO, time.Millisecond)
		c.Advance(AccountSeqIO, time.Millisecond)
		return c.Breakdown()
	}
	first := mk()
	for i := 0; i < 20; i++ {
		if got := mk(); got != first {
			t.Fatalf("Breakdown() nondeterministic: %q vs %q", got, first)
		}
	}
}

func TestTimerMeasuresSpan(t *testing.T) {
	c := New()
	c.Advance(AccountCPU, time.Millisecond)
	tm := c.StartTimer()
	c.Advance(AccountRandIO, 7*time.Millisecond)
	if got, want := tm.Elapsed(), 7*time.Millisecond; got != want {
		t.Errorf("Elapsed() = %v, want %v", got, want)
	}
}
