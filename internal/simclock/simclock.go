// Package simclock provides a deterministic virtual clock for the query
// execution engine. All costs in the system — I/O waits, per-row CPU work,
// latch acquisitions — are charged to a Clock instead of being measured with
// wall time. Experiments therefore produce identical "execution times" on
// every run and on every machine, which is what lets the robustness maps of
// the paper be regenerated exactly.
//
// A Clock also keeps named cost accounts so that an experiment can report
// where virtual time went (sequential I/O vs. random I/O vs. CPU), mirroring
// the per-operator analysis in the paper's discussion of Figures 1–10.
package simclock

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Account identifies a category of virtual-time expenditure.
type Account string

// Standard accounts used throughout the engine. Packages may define their
// own accounts; these cover the cost categories the paper reasons about.
const (
	AccountSeqIO   Account = "io.sequential"
	AccountRandIO  Account = "io.random"
	AccountCPU     Account = "cpu"
	AccountSort    Account = "cpu.sort"
	AccountHash    Account = "cpu.hash"
	AccountCompare Account = "cpu.compare"
	AccountLatch   Account = "latch"
	AccountSpillIO Account = "io.spill"
	AccountOther   Account = "other"
)

// Clock is a deterministic virtual clock. It is not safe for concurrent
// use: each measurement session owns its own Clock, confined to one
// goroutine at a time (engine.Session). Parallel sweeps run many clocks on
// many goroutines — one per session — but never share one; the paper's
// serial measurement semantics are preserved per run, concurrency only
// overlaps separate runs' wall-clock time.
type Clock struct {
	now      time.Duration
	accounts map[Account]time.Duration
	frozen   bool

	// Hot-account cache: consecutive charges to the same account (the
	// common case — a burst of latch costs, a batch of CPU charges) are
	// summed here and folded into the map only when the account changes or
	// the accounts are read. This skips a map hash per Advance on the
	// per-cell hot path without changing any observable total.
	hotAcct Account
	hotSum  time.Duration
	hotSet  bool
}

// New returns a Clock at virtual time zero.
func New() *Clock {
	return &Clock{accounts: make(map[Account]time.Duration)}
}

// Now returns the current virtual time since the clock's epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance charges d of virtual time to the given account. Negative charges
// and charges to a frozen clock panic: both indicate engine bugs that would
// silently corrupt an experiment.
func (c *Clock) Advance(acct Account, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v on %q", d, acct))
	}
	if c.frozen {
		panic("simclock: advance on frozen clock")
	}
	c.now += d
	if c.hotSet && acct == c.hotAcct {
		c.hotSum += d
		return
	}
	c.flushHot()
	c.hotAcct, c.hotSum, c.hotSet = acct, d, true
}

// flushHot folds the cached hot-account sum into the accounts map.
func (c *Clock) flushHot() {
	if c.hotSet {
		c.accounts[c.hotAcct] += c.hotSum
		c.hotSum = 0
		c.hotSet = false
	}
}

// Freeze prevents further advances. Experiments freeze the clock after a
// query completes so a leaked iterator cannot perturb the measurement.
func (c *Clock) Freeze() { c.frozen = true }

// Frozen reports whether the clock has been frozen.
func (c *Clock) Frozen() bool { return c.frozen }

// Reset returns the clock to time zero, clears all accounts, and unfreezes.
func (c *Clock) Reset() {
	c.now = 0
	c.frozen = false
	c.hotSum = 0
	c.hotSet = false
	for k := range c.accounts {
		delete(c.accounts, k)
	}
}

// Spent returns the time charged to a single account.
func (c *Clock) Spent(acct Account) time.Duration {
	c.flushHot()
	return c.accounts[acct]
}

// Accounts returns a copy of all non-zero accounts.
func (c *Clock) Accounts() map[Account]time.Duration {
	c.flushHot()
	out := make(map[Account]time.Duration, len(c.accounts))
	for k, v := range c.accounts {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// Breakdown renders the accounts as a deterministic, human-readable summary
// sorted by descending expenditure, e.g. for EXPLAIN ANALYZE-style output.
func (c *Clock) Breakdown() string {
	c.flushHot()
	type kv struct {
		k Account
		v time.Duration
	}
	rows := make([]kv, 0, len(c.accounts))
	for k, v := range c.accounts {
		if v != 0 {
			rows = append(rows, kv{k, v})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	var b strings.Builder
	fmt.Fprintf(&b, "total %v", c.now)
	for _, r := range rows {
		fmt.Fprintf(&b, "; %s %v", r.k, r.v)
	}
	return b.String()
}

// Timer measures a span of virtual time.
type Timer struct {
	c     *Clock
	start time.Duration
}

// StartTimer begins a span at the current virtual time.
func (c *Clock) StartTimer() Timer { return Timer{c: c, start: c.now} }

// Elapsed returns the virtual time since the timer started.
func (t Timer) Elapsed() time.Duration { return t.c.now - t.start }
