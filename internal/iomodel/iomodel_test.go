package iomodel

import (
	"testing"
	"testing/quick"
	"time"

	"robustmap/internal/simclock"
)

func newDev(t *testing.T) (*Device, *simclock.Clock) {
	t.Helper()
	c := simclock.New()
	return NewDevice(DefaultParams(), c), c
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	if err := FlashParams().Validate(); err != nil {
		t.Fatalf("FlashParams invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Params)
	}{
		{"negative seek", func(p *Params) { p.SeekLatency = -1 }},
		{"zero transfer", func(p *Params) { p.PageTransfer = 0 }},
		{"zero prefetch", func(p *Params) { p.PrefetchPages = 0 }},
		{"write penalty below one", func(p *Params) { p.WritePenalty = 0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mod(&p)
			if p.Validate() == nil {
				t.Errorf("Validate() accepted %+v", p)
			}
		})
	}
}

func TestNewDevicePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDevice(Params{}, simclock.New())
}

func TestRandomReadChargesSeekPlusTransfer(t *testing.T) {
	d, c := newDev(t)
	d.ReadPage(1, 100)
	want := DefaultParams().SeekLatency + DefaultParams().PageTransfer
	if c.Now() != want {
		t.Errorf("first read cost %v, want %v", c.Now(), want)
	}
	if s := d.Stats(); s.RandomReads != 1 || s.PagesRead != 1 {
		t.Errorf("stats = %+v, want 1 random read", s)
	}
}

func TestSequentialRunDetection(t *testing.T) {
	d, c := newDev(t)
	d.ReadPage(1, 0)
	before := c.Now()
	d.ReadPage(1, 1) // continues the run
	if got, want := c.Now()-before, DefaultParams().PageTransfer; got != want {
		t.Errorf("sequential read cost %v, want transfer-only %v", got, want)
	}
	before = c.Now()
	d.ReadPage(1, 5) // breaks the run
	if got := c.Now() - before; got <= DefaultParams().PageTransfer {
		t.Errorf("non-sequential read cost %v, want seek included", got)
	}
	s := d.Stats()
	if s.SequentialReads != 1 || s.RandomReads != 2 {
		t.Errorf("stats = %+v, want 1 sequential / 2 random", s)
	}
}

func TestSequentialRunsArePerFile(t *testing.T) {
	d, _ := newDev(t)
	d.ReadPage(1, 0)
	d.ReadPage(2, 1) // page 1 of a different file: not sequential
	if s := d.Stats(); s.RandomReads != 2 {
		t.Errorf("RandomReads = %d, want 2 (runs must not span files)", s.RandomReads)
	}
}

func TestPrefetchAmortizesSeek(t *testing.T) {
	d, c := newDev(t)
	p := DefaultParams()
	d.Prefetch(1, 0, 64)
	want := p.SeekLatency + 64*p.PageTransfer
	if c.Now() != want {
		t.Errorf("prefetch cost %v, want %v", c.Now(), want)
	}
	// Reading the prefetched pages is free.
	before := c.Now()
	for i := int64(0); i < 64; i++ {
		d.ReadPage(1, i)
	}
	if c.Now() != before {
		t.Errorf("reading prefetched pages cost %v, want 0", c.Now()-before)
	}
	if s := d.Stats(); s.SequentialReads != 64 || s.PagesRead != 64 {
		t.Errorf("stats = %+v, want 64 sequential reads", s)
	}
}

func TestPrefetchContinuingRunSkipsSeek(t *testing.T) {
	d, c := newDev(t)
	p := DefaultParams()
	d.Prefetch(1, 0, 4)
	before := c.Now()
	d.Prefetch(1, 4, 4) // continues the run
	if got, want := c.Now()-before, 4*p.PageTransfer; got != want {
		t.Errorf("continuing prefetch cost %v, want %v", got, want)
	}
}

func TestPrefetchZeroOrNegativeIsNoop(t *testing.T) {
	d, c := newDev(t)
	d.Prefetch(1, 0, 0)
	d.Prefetch(1, 0, -3)
	if c.Now() != 0 {
		t.Errorf("no-op prefetch charged %v", c.Now())
	}
}

func TestPrefetchedPageConsumedOnce(t *testing.T) {
	d, c := newDev(t)
	d.Prefetch(1, 0, 1)
	d.ReadPage(1, 0) // free
	base := c.Now()
	d.ReadPage(1, 0) // re-read: page 0 does not continue run ending at 0
	if c.Now() == base {
		t.Error("second read of a once-prefetched page was free")
	}
}

func TestWritePageAppliesPenalty(t *testing.T) {
	p := DefaultParams()
	p.WritePenalty = 2.0
	c := simclock.New()
	d := NewDevice(p, c)
	d.WritePage(1, 7)
	want := time.Duration(float64(p.SeekLatency+p.PageTransfer) * 2.0)
	if c.Now() != want {
		t.Errorf("write cost %v, want %v", c.Now(), want)
	}
	if d.Stats().PagesWritten != 1 {
		t.Errorf("PagesWritten = %d, want 1", d.Stats().PagesWritten)
	}
}

func TestSequentialWritesCheap(t *testing.T) {
	d, c := newDev(t)
	d.WritePage(1, 0)
	before := c.Now()
	d.WritePage(1, 1)
	if got, want := c.Now()-before, DefaultParams().PageTransfer; got != want {
		t.Errorf("sequential write cost %v, want %v", got, want)
	}
}

func TestAnalyticCosts(t *testing.T) {
	p := DefaultParams()
	if got := p.SequentialCost(0); got != 0 {
		t.Errorf("SequentialCost(0) = %v, want 0", got)
	}
	if got := p.RandomCost(0); got != 0 {
		t.Errorf("RandomCost(0) = %v, want 0", got)
	}
	// 128 pages = 2 prefetch units.
	want := 2*p.SeekLatency + 128*p.PageTransfer
	if got := p.SequentialCost(128); got != want {
		t.Errorf("SequentialCost(128) = %v, want %v", got, want)
	}
	if got, want := p.RandomCost(10), 10*(p.SeekLatency+p.PageTransfer); got != want {
		t.Errorf("RandomCost(10) = %v, want %v", got, want)
	}
}

func TestAnalyticSequentialMatchesDevice(t *testing.T) {
	d, c := newDev(t)
	const n = 200
	unit := d.PrefetchUnit()
	for at := int64(0); at < n; at += int64(unit) {
		k := unit
		if rem := n - at; rem < int64(unit) {
			k = int(rem)
		}
		d.Prefetch(1, at, k)
	}
	// Analytic model assumes each unit pays a seek; the device elides seeks
	// for continuing runs, so the device must be at most the analytic cost.
	analytic := DefaultParams().SequentialCost(n)
	if c.Now() > analytic {
		t.Errorf("device sequential scan %v exceeds analytic bound %v", c.Now(), analytic)
	}
	if c.Now() < time.Duration(n)*DefaultParams().PageTransfer {
		t.Errorf("device sequential scan %v below pure transfer floor", c.Now())
	}
}

func TestRandomVsSequentialAsymmetry(t *testing.T) {
	// The paper's Figure 1 depends on random access being much more
	// expensive than sequential; guard the default profile's ratio.
	p := DefaultParams()
	ratio := float64(p.SeekLatency+p.PageTransfer) / float64(p.PageTransfer)
	if ratio < 20 || ratio > 200 {
		t.Errorf("random/sequential cost ratio = %.1f, want within [20,200]", ratio)
	}
}

func TestResetStats(t *testing.T) {
	d, _ := newDev(t)
	d.ReadPage(1, 0)
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset = %+v, want zero", s)
	}
}

func TestQuickSequentialCostMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint16) bool {
		na, nb := int64(a), int64(b)
		if na <= nb {
			return p.SequentialCost(na) <= p.SequentialCost(nb)
		}
		return p.SequentialCost(na) >= p.SequentialCost(nb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomCostLinear(t *testing.T) {
	p := DefaultParams()
	f := func(n uint16) bool {
		return p.RandomCost(int64(n)) == time.Duration(n)*(p.SeekLatency+p.PageTransfer)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSequentialNeverBeatsTransferFloor(t *testing.T) {
	p := DefaultParams()
	f := func(n uint16) bool {
		return p.SequentialCost(int64(n)) >= time.Duration(n)*p.PageTransfer
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
