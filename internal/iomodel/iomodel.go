// Package iomodel models a storage device with distinct sequential and
// random access costs. The buffer pool charges every page miss to a Device,
// which in turn charges virtual time to a simclock.Clock.
//
// The cost asymmetry between random and sequential access is the engine of
// every figure in the paper: a table scan is sequential and therefore flat
// across selectivities; a traditional index scan pays one random access per
// fetched row and therefore crosses the table scan at a selectivity of
// roughly transfer/seek; the improved index scan converts random fetches
// into near-sequential ones by sorting record identifiers first.
package iomodel

import (
	"fmt"
	"time"

	"robustmap/internal/simclock"
)

// Params describes a device. The defaults approximate a 2009-era enterprise
// disk — the hardware class the paper measured — but any combination is
// valid, including flash-like profiles with cheap random reads.
type Params struct {
	// SeekLatency is charged for every access that does not continue the
	// previous access's sequential run (seek + rotational delay).
	SeekLatency time.Duration
	// PageTransfer is charged for every page moved, sequential or not.
	PageTransfer time.Duration
	// PrefetchPages is the number of consecutive pages fetched by one
	// prefetch request; the seek is amortized over the whole unit.
	PrefetchPages int
	// WritePenalty scales write costs relative to reads (≥ 1).
	WritePenalty float64
}

// DefaultParams returns the disk profile used by all experiments:
// 4 ms seek, 8 KiB pages at ~100 MB/s (0.08 ms/page), 64-page prefetch.
// With these values one random page access costs as much as ~51 sequential
// page transfers, so the traditional index scan crosses the table scan at a
// selectivity of a few 2⁻¹², matching the paper's "about 2⁻¹¹ of the rows".
func DefaultParams() Params {
	return Params{
		SeekLatency:   4 * time.Millisecond,
		PageTransfer:  80 * time.Microsecond,
		PrefetchPages: 64,
		WritePenalty:  1.0,
	}
}

// FlashParams returns a flash-like profile: random reads nearly as cheap as
// sequential ones. Used by ablation benchmarks to show how the crossover
// points in Figure 1 move with the device.
func FlashParams() Params {
	return Params{
		SeekLatency:   60 * time.Microsecond,
		PageTransfer:  20 * time.Microsecond,
		PrefetchPages: 16,
		WritePenalty:  2.0,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.SeekLatency < 0 {
		return fmt.Errorf("iomodel: negative SeekLatency %v", p.SeekLatency)
	}
	if p.PageTransfer <= 0 {
		return fmt.Errorf("iomodel: non-positive PageTransfer %v", p.PageTransfer)
	}
	if p.PrefetchPages < 1 {
		return fmt.Errorf("iomodel: PrefetchPages %d < 1", p.PrefetchPages)
	}
	if p.WritePenalty < 1 {
		return fmt.Errorf("iomodel: WritePenalty %v < 1", p.WritePenalty)
	}
	return nil
}

// Stats counts physical operations performed by a Device.
type Stats struct {
	RandomReads     int64 // accesses that paid a seek
	SequentialReads int64 // accesses that continued a run or rode a prefetch
	PagesRead       int64
	PagesWritten    int64
	PrefetchIssued  int64 // prefetch units requested
}

// Device is a simulated storage device. A Device belongs to a single query
// execution (via its Clock) and is not safe for concurrent use.
type Device struct {
	params Params
	clock  *simclock.Clock
	stats  Stats

	// lastPage tracks the most recently accessed page id per file so that
	// physically sequential access patterns are priced sequentially even
	// without an explicit prefetch hint.
	lastPage map[uint32]int64
	// prefetched holds pages already paid for by an earlier prefetch unit,
	// keyed by packed address (uint64 keys hash much faster than structs
	// on this per-page-read path).
	prefetched map[uint64]struct{}
}

// packAddr packs a file/page pair into one uint64 map key: 24 bits of file,
// 40 bits of page. The ranges are far beyond what any experiment allocates
// (2^40 pages is 8 EiB of 8 KiB pages); the guard makes an overflow loud
// rather than a silent key collision.
func packAddr(file uint32, page int64) uint64 {
	if file >= 1<<24 || page < 0 || page >= 1<<40 {
		panic("iomodel: page address out of packable range")
	}
	return uint64(file)<<40 | uint64(page)
}

// NewDevice creates a Device charging the given clock. Invalid params panic:
// device construction happens once per experiment and a bad profile would
// invalidate every measurement after it.
func NewDevice(params Params, clock *simclock.Clock) *Device {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if clock == nil {
		panic("iomodel: nil clock")
	}
	return &Device{
		params:     params,
		clock:      clock,
		lastPage:   make(map[uint32]int64),
		prefetched: make(map[uint64]struct{}),
	}
}

// Params returns the device's cost profile.
func (d *Device) Params() Params { return d.params }

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the counters without touching cost state.
func (d *Device) ResetStats() { d.stats = Stats{} }

// ResetPosition forgets all sequential-run and read-ahead state, returning
// the device to its just-constructed condition (head parked, read-ahead
// buffer empty). Sessions call it between measurement runs so that a reused
// device prices a run exactly like a fresh one — the property that keeps
// concurrent sweeps bit-for-bit deterministic however runs are scheduled.
func (d *Device) ResetPosition() {
	clear(d.lastPage)
	clear(d.prefetched)
}

// ReadPage charges for reading one page of the given file. If the page
// continues the previous access's sequential run (or was covered by a
// Prefetch), only transfer time is charged; otherwise a seek is charged too.
func (d *Device) ReadPage(file uint32, page int64) {
	addr := packAddr(file, page)
	if _, ok := d.prefetched[addr]; ok {
		delete(d.prefetched, addr)
		d.stats.SequentialReads++
		d.stats.PagesRead++
		d.lastPage[file] = page
		return // already paid for by the prefetch unit
	}
	sequential := false
	if last, ok := d.lastPage[file]; ok && page == last+1 {
		sequential = true
	}
	if sequential {
		d.clock.Advance(simclock.AccountSeqIO, d.params.PageTransfer)
		d.stats.SequentialReads++
	} else {
		d.clock.Advance(simclock.AccountRandIO, d.params.SeekLatency+d.params.PageTransfer)
		d.stats.RandomReads++
	}
	d.stats.PagesRead++
	d.lastPage[file] = page
}

// BeginReadAhead discards unconsumed read-ahead marks for the file. The
// device models a read-ahead buffer of one window per file: issuing new
// read-ahead replaces whatever the previous window had fetched but the
// caller never read, so stale marks cannot make later cold reads free.
// The buffer pool calls this once per logical prefetch request.
func (d *Device) BeginReadAhead(file uint32) {
	for addr := range d.prefetched {
		if addr>>40 == uint64(file) {
			delete(d.prefetched, addr)
		}
	}
}

// Prefetch charges for reading n consecutive pages starting at page as one
// unit: one seek plus n transfers. Subsequent ReadPage calls for those pages
// are free. Scans use Prefetch; point lookups use ReadPage.
func (d *Device) Prefetch(file uint32, page int64, n int) {
	if n <= 0 {
		return
	}
	seek := d.params.SeekLatency
	if last, ok := d.lastPage[file]; ok && page == last+1 {
		seek = 0 // continuing a run: no seek for this unit either
	}
	cost := seek + time.Duration(n)*d.params.PageTransfer
	if seek > 0 {
		d.clock.Advance(simclock.AccountRandIO, seek)
		d.clock.Advance(simclock.AccountSeqIO, cost-seek)
	} else {
		d.clock.Advance(simclock.AccountSeqIO, cost)
	}
	for i := 0; i < n; i++ {
		d.prefetched[packAddr(file, page+int64(i))] = struct{}{}
	}
	d.stats.PrefetchIssued++
	d.lastPage[file] = page + int64(n) - 1
}

// PrefetchUnit returns the device's preferred prefetch size in pages.
func (d *Device) PrefetchUnit() int { return d.params.PrefetchPages }

// WritePage charges for writing one page, applying the write penalty.
// Sequential-run detection applies exactly as for reads (spill files are
// written sequentially and priced accordingly).
func (d *Device) WritePage(file uint32, page int64) {
	sequential := false
	if last, ok := d.lastPage[file]; ok && page == last+1 {
		sequential = true
	}
	transfer := time.Duration(float64(d.params.PageTransfer) * d.params.WritePenalty)
	if sequential {
		d.clock.Advance(simclock.AccountSpillIO, transfer)
	} else {
		seek := time.Duration(float64(d.params.SeekLatency) * d.params.WritePenalty)
		d.clock.Advance(simclock.AccountSpillIO, seek+transfer)
	}
	d.stats.PagesWritten++
	d.lastPage[file] = page
}

// SequentialCost returns the virtual time to read n pages sequentially with
// prefetching: used by planners and tests as the analytic lower bound for a
// full scan.
func (p Params) SequentialCost(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	units := (n + int64(p.PrefetchPages) - 1) / int64(p.PrefetchPages)
	return time.Duration(units)*p.SeekLatency + time.Duration(n)*p.PageTransfer
}

// RandomCost returns the virtual time to read n pages in random order.
func (p Params) RandomCost(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * (p.SeekLatency + p.PageTransfer)
}
