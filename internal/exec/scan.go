package exec

import (
	"time"

	"robustmap/internal/btree"
	"robustmap/internal/catalog"
	"robustmap/internal/mvcc"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// TableScan reads every row of a table in physical order with prefetching
// and applies a conjunction of predicates. Its cost is flat across
// selectivities — the horizontal line of Figure 1.
type TableScan struct {
	ctx   *Ctx
	table *catalog.Table
	preds []ColPred

	pages      storage.PageNo
	pg         storage.PageNo
	prefetched storage.PageNo // pages below this are already paid for
	slot       int
	sp         storage.SlottedPage
	havePage   bool // sp is valid and pg is pinned
	open       bool
	row        Row

	batch *Batch // batch-mode output buffer
	eof   bool   // a partial final batch was emitted; next NextBatch ends
}

// NewTableScan constructs a table scan. Predicate ordinals refer to the
// table schema.
func NewTableScan(ctx *Ctx, t *catalog.Table, preds []ColPred) *TableScan {
	return &TableScan{ctx: ctx, table: t, preds: preds}
}

// Open positions the scan before the first page.
func (s *TableScan) Open() {
	s.pages = s.table.Heap.NumPages()
	s.pg = -1
	s.prefetched = 0
	s.slot = -1
	s.havePage = false
	s.open = true
	s.eof = false
}

// Next returns the next matching row.
func (s *TableScan) Next() (Row, bool) {
	if !s.open {
		panic("exec: Next on unopened TableScan")
	}
	for {
		if s.havePage && s.slot+1 < s.sp.NumSlots() {
			s.slot++
			rec, ok := s.sp.Get(storage.Slot(s.slot))
			if !ok {
				continue
			}
			if row, ok := s.decodeAndFilter(rec); ok {
				return row, true
			}
			continue
		}
		// Advance to the next page, prefetching in device units.
		if s.havePage {
			s.ctx.Pool.Unpin(s.table.Heap.File(), s.pg)
			s.havePage = false
		}
		s.pg++
		if s.pg >= s.pages {
			s.open = false
			return nil, false
		}
		if s.pg >= s.prefetched {
			k := storage.PageNo(s.ctx.Pool.PrefetchUnit())
			if rem := s.pages - s.pg; rem < k {
				k = rem
			}
			s.ctx.Pool.Prefetch(s.table.Heap.File(), s.pg, int(k))
			s.prefetched = s.pg + k
		}
		data := s.ctx.Pool.Get(s.table.Heap.File(), s.pg)
		s.sp = storage.AsSlotted(data)
		s.havePage = true
		s.slot = -1
	}
}

func (s *TableScan) decodeAndFilter(rec []byte) (Row, bool) {
	payload := rec
	if s.table.Versioned != nil {
		h, p := mvcc.DecodeHeader(rec)
		if !s.ctx.Snap.Visible(h) {
			return nil, false
		}
		payload = p
	}
	s.ctx.ChargeCPU(simclock.AccountCPU, CostRowDecode, 1)
	s.row = s.row[:0]
	var err error
	s.row, _, err = s.table.Schema.Decode(payload, s.row)
	if err != nil {
		panic("exec: corrupt row in table scan: " + err.Error())
	}
	if !MatchesAll(s.ctx, s.preds, s.row) {
		return nil, false
	}
	s.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return s.row, true
}

// NextBatch returns the next batch of matching rows. The page-access
// sequence (prefetch declarations, Get/Unpin pairs, pin lifetimes across
// calls) is identical to row-at-a-time iteration; only the CPU charges are
// summed per batch.
func (s *TableScan) NextBatch() (*Batch, bool) {
	if !s.open {
		panic("exec: NextBatch on unopened TableScan")
	}
	if s.eof {
		s.open = false
		return nil, false
	}
	if s.batch == nil {
		s.batch = getBatch()
	}
	b := s.batch
	b.reset()
	var cpu time.Duration
	for b.n < BatchCapacity {
		if s.havePage && s.slot+1 < s.sp.NumSlots() {
			s.slot++
			rec, ok := s.sp.Get(storage.Slot(s.slot))
			if !ok {
				continue
			}
			s.decodeAndFilterBatch(rec, b, &cpu)
			continue
		}
		if s.havePage {
			s.ctx.Pool.Unpin(s.table.Heap.File(), s.pg)
			s.havePage = false
		}
		s.pg++
		if s.pg >= s.pages {
			s.eof = true
			break
		}
		if s.pg >= s.prefetched {
			k := storage.PageNo(s.ctx.Pool.PrefetchUnit())
			if rem := s.pages - s.pg; rem < k {
				k = rem
			}
			s.ctx.Pool.Prefetch(s.table.Heap.File(), s.pg, int(k))
			s.prefetched = s.pg + k
		}
		data := s.ctx.Pool.Get(s.table.Heap.File(), s.pg)
		s.sp = storage.AsSlotted(data)
		s.havePage = true
		s.slot = -1
	}
	s.ctx.chargeDur(simclock.AccountCPU, cpu)
	if b.n == 0 {
		s.open = false
		return nil, false
	}
	return b, true
}

// decodeAndFilterBatch is decodeAndFilter for batch mode: the row is decoded
// into the batch (arena-backed, allocation-free in steady state) and CPU
// costs accumulate into cpu.
func (s *TableScan) decodeAndFilterBatch(rec []byte, b *Batch, cpu *time.Duration) {
	payload := rec
	if s.table.Versioned != nil {
		h, p := mvcc.DecodeHeader(rec)
		if !s.ctx.Snap.Visible(h) {
			return
		}
		payload = p
	}
	*cpu += CostRowDecode
	row := b.rowBuf()
	var err error
	row, b.arena, _, err = s.table.Schema.DecodeArena(payload, row, b.arena)
	if err != nil {
		panic("exec: corrupt row in table scan: " + err.Error())
	}
	if !matchesAllTally(s.preds, row, cpu) {
		b.store(row)
		return
	}
	*cpu += CostEmit
	b.commit(row)
}

// Close releases the current page pin.
func (s *TableScan) Close() {
	if s.open && s.havePage {
		s.ctx.Pool.Unpin(s.table.Heap.File(), s.pg)
		s.havePage = false
	}
	s.open = false
	putBatch(s.batch)
	s.batch = nil
}

// IndexRangeScan walks an index over the key range [lo, hi) and emits RIDs
// in key order — physically scattered order, which is exactly what makes
// the traditional fetch expensive.
type IndexRangeScan struct {
	ctx    *Ctx
	ix     *catalog.Index
	lo     []byte
	hi     []byte
	cur    *btree.Cursor
	ridBuf []storage.RID
}

// NewIndexRangeScan constructs a range scan. lo and hi are normalized key
// prefixes (see catalog.Index.PrefixFor); nil means unbounded.
func NewIndexRangeScan(ctx *Ctx, ix *catalog.Index, lo, hi []byte) *IndexRangeScan {
	return &IndexRangeScan{ctx: ctx, ix: ix, lo: lo, hi: hi}
}

// Open seeks to the start of the range.
func (s *IndexRangeScan) Open() { s.cur = s.ix.Tree.Seek(s.lo, s.hi) }

// Next returns the next RID in key order.
func (s *IndexRangeScan) Next() (storage.RID, bool) {
	if !s.cur.Next() {
		return storage.RID{}, false
	}
	s.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, 1)
	return catalog.DecodeRIDSuffix(s.cur.Key()), true
}

// NextRIDBatch returns up to max RIDs in key order, charging the per-entry
// CPU cost once per batch. The cursor performs its leaf-page I/O in the
// same order as row-at-a-time Next calls; the bound lets budgeted consumers
// stop that I/O at exactly the entry row-at-a-time consumption would.
func (s *IndexRangeScan) NextRIDBatch(max int) ([]storage.RID, bool) {
	if max <= 0 || max > ridBatchCap {
		max = ridBatchCap
	}
	buf := s.ridBuf[:0]
	for len(buf) < max && s.cur.Next() {
		buf = append(buf, catalog.DecodeRIDSuffix(s.cur.Key()))
	}
	s.ridBuf = buf
	if len(buf) == 0 {
		return nil, false
	}
	s.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, int64(len(buf)))
	return buf, true
}

// Close is a no-op (cursors hold no pins between calls).
func (s *IndexRangeScan) Close() { s.cur = nil }

// CoveringIndexScan answers a query from index entries alone, decoding the
// key columns and applying residual predicates to them. Only valid on
// covering indexes: on versioned tables row visibility lives in the base
// row, so constructing this over a non-covering index panics — that is
// precisely the System B limitation of Figure 8.
type CoveringIndexScan struct {
	ctx   *Ctx
	ix    *catalog.Index
	lo    []byte
	hi    []byte
	types []record.Type
	preds []ColPred // ordinals refer to the index's column list
	cur   *btree.Cursor
	row   Row
	batch *Batch
	eof   bool
}

// NewCoveringIndexScan constructs an index-only scan.
func NewCoveringIndexScan(ctx *Ctx, ix *catalog.Index, lo, hi []byte, preds []ColPred) *CoveringIndexScan {
	if !ix.Covering {
		panic("exec: covering scan over non-covering index " + ix.Name)
	}
	types := make([]record.Type, len(ix.Columns))
	for i, o := range ix.Ordinals {
		types[i] = ix.Table.Schema.Column(o).Type
	}
	return &CoveringIndexScan{ctx: ctx, ix: ix, lo: lo, hi: hi, types: types, preds: preds}
}

// Open seeks to the start of the range.
func (s *CoveringIndexScan) Open() {
	s.cur = s.ix.Tree.Seek(s.lo, s.hi)
	s.eof = false
}

// Next returns the next matching index row (the key columns, in index
// column order).
func (s *CoveringIndexScan) Next() (Row, bool) {
	for s.cur.Next() {
		s.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, 1)
		key := s.cur.Key()
		vals, err := record.Denormalize(key[:len(key)-catalog.RIDSuffixLen], s.types)
		if err != nil {
			panic("exec: corrupt index key: " + err.Error())
		}
		s.row = vals
		if MatchesAll(s.ctx, s.preds, s.row) {
			s.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
			return s.row, true
		}
	}
	return nil, false
}

// NextBatch returns the next batch of matching index rows, denormalizing
// key columns directly into the batch and summing CPU charges per batch.
func (s *CoveringIndexScan) NextBatch() (*Batch, bool) {
	if s.eof {
		return nil, false
	}
	if s.batch == nil {
		s.batch = getBatch()
	}
	b := s.batch
	b.reset()
	var cpu time.Duration
	for b.n < BatchCapacity {
		if !s.cur.Next() {
			s.eof = true
			break
		}
		cpu += CostIndexEntry
		key := s.cur.Key()
		row, err := record.DenormalizeAppend(b.rowBuf(), key[:len(key)-catalog.RIDSuffixLen], s.types)
		if err != nil {
			panic("exec: corrupt index key: " + err.Error())
		}
		if !matchesAllTally(s.preds, row, &cpu) {
			b.store(row)
			continue
		}
		cpu += CostEmit
		b.commit(row)
	}
	s.ctx.chargeDur(simclock.AccountCPU, cpu)
	if b.n == 0 {
		return nil, false
	}
	return b, true
}

// Close is a no-op.
func (s *CoveringIndexScan) Close() {
	s.cur = nil
	putBatch(s.batch)
	s.batch = nil
}
