package exec

import (
	"robustmap/internal/btree"
	"robustmap/internal/catalog"
	"robustmap/internal/mvcc"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// TableScan reads every row of a table in physical order with prefetching
// and applies a conjunction of predicates. Its cost is flat across
// selectivities — the horizontal line of Figure 1.
type TableScan struct {
	ctx   *Ctx
	table *catalog.Table
	preds []ColPred

	pages      storage.PageNo
	pg         storage.PageNo
	prefetched storage.PageNo // pages below this are already paid for
	slot       int
	sp         storage.SlottedPage
	havePage   bool // sp is valid and pg is pinned
	open       bool
	row        Row
}

// NewTableScan constructs a table scan. Predicate ordinals refer to the
// table schema.
func NewTableScan(ctx *Ctx, t *catalog.Table, preds []ColPred) *TableScan {
	return &TableScan{ctx: ctx, table: t, preds: preds}
}

// Open positions the scan before the first page.
func (s *TableScan) Open() {
	s.pages = s.table.Heap.NumPages()
	s.pg = -1
	s.prefetched = 0
	s.slot = -1
	s.havePage = false
	s.open = true
}

// Next returns the next matching row.
func (s *TableScan) Next() (Row, bool) {
	if !s.open {
		panic("exec: Next on unopened TableScan")
	}
	for {
		if s.havePage && s.slot+1 < s.sp.NumSlots() {
			s.slot++
			rec, ok := s.sp.Get(storage.Slot(s.slot))
			if !ok {
				continue
			}
			if row, ok := s.decodeAndFilter(rec); ok {
				return row, true
			}
			continue
		}
		// Advance to the next page, prefetching in device units.
		if s.havePage {
			s.ctx.Pool.Unpin(s.table.Heap.File(), s.pg)
			s.havePage = false
		}
		s.pg++
		if s.pg >= s.pages {
			s.open = false
			return nil, false
		}
		if s.pg >= s.prefetched {
			k := storage.PageNo(s.ctx.Pool.PrefetchUnit())
			if rem := s.pages - s.pg; rem < k {
				k = rem
			}
			s.ctx.Pool.Prefetch(s.table.Heap.File(), s.pg, int(k))
			s.prefetched = s.pg + k
		}
		data := s.ctx.Pool.Get(s.table.Heap.File(), s.pg)
		s.sp = storage.AsSlotted(data)
		s.havePage = true
		s.slot = -1
	}
}

func (s *TableScan) decodeAndFilter(rec []byte) (Row, bool) {
	payload := rec
	if s.table.Versioned != nil {
		h, p := mvcc.DecodeHeader(rec)
		if !s.ctx.Snap.Visible(h) {
			return nil, false
		}
		payload = p
	}
	s.ctx.ChargeCPU(simclock.AccountCPU, CostRowDecode, 1)
	s.row = s.row[:0]
	var err error
	s.row, _, err = s.table.Schema.Decode(payload, s.row)
	if err != nil {
		panic("exec: corrupt row in table scan: " + err.Error())
	}
	if !MatchesAll(s.ctx, s.preds, s.row) {
		return nil, false
	}
	s.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return s.row, true
}

// Close releases the current page pin.
func (s *TableScan) Close() {
	if s.open && s.havePage {
		s.ctx.Pool.Unpin(s.table.Heap.File(), s.pg)
		s.havePage = false
	}
	s.open = false
}

// IndexRangeScan walks an index over the key range [lo, hi) and emits RIDs
// in key order — physically scattered order, which is exactly what makes
// the traditional fetch expensive.
type IndexRangeScan struct {
	ctx *Ctx
	ix  *catalog.Index
	lo  []byte
	hi  []byte
	cur *btree.Cursor
}

// NewIndexRangeScan constructs a range scan. lo and hi are normalized key
// prefixes (see catalog.Index.PrefixFor); nil means unbounded.
func NewIndexRangeScan(ctx *Ctx, ix *catalog.Index, lo, hi []byte) *IndexRangeScan {
	return &IndexRangeScan{ctx: ctx, ix: ix, lo: lo, hi: hi}
}

// Open seeks to the start of the range.
func (s *IndexRangeScan) Open() { s.cur = s.ix.Tree.Seek(s.lo, s.hi) }

// Next returns the next RID in key order.
func (s *IndexRangeScan) Next() (storage.RID, bool) {
	if !s.cur.Next() {
		return storage.RID{}, false
	}
	s.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, 1)
	return catalog.DecodeRIDSuffix(s.cur.Key()), true
}

// Close is a no-op (cursors hold no pins between calls).
func (s *IndexRangeScan) Close() { s.cur = nil }

// CoveringIndexScan answers a query from index entries alone, decoding the
// key columns and applying residual predicates to them. Only valid on
// covering indexes: on versioned tables row visibility lives in the base
// row, so constructing this over a non-covering index panics — that is
// precisely the System B limitation of Figure 8.
type CoveringIndexScan struct {
	ctx   *Ctx
	ix    *catalog.Index
	lo    []byte
	hi    []byte
	types []record.Type
	preds []ColPred // ordinals refer to the index's column list
	cur   *btree.Cursor
	row   Row
}

// NewCoveringIndexScan constructs an index-only scan.
func NewCoveringIndexScan(ctx *Ctx, ix *catalog.Index, lo, hi []byte, preds []ColPred) *CoveringIndexScan {
	if !ix.Covering {
		panic("exec: covering scan over non-covering index " + ix.Name)
	}
	types := make([]record.Type, len(ix.Columns))
	for i, o := range ix.Ordinals {
		types[i] = ix.Table.Schema.Column(o).Type
	}
	return &CoveringIndexScan{ctx: ctx, ix: ix, lo: lo, hi: hi, types: types, preds: preds}
}

// Open seeks to the start of the range.
func (s *CoveringIndexScan) Open() { s.cur = s.ix.Tree.Seek(s.lo, s.hi) }

// Next returns the next matching index row (the key columns, in index
// column order).
func (s *CoveringIndexScan) Next() (Row, bool) {
	for s.cur.Next() {
		s.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, 1)
		key := s.cur.Key()
		vals, err := record.Denormalize(key[:len(key)-catalog.RIDSuffixLen], s.types)
		if err != nil {
			panic("exec: corrupt index key: " + err.Error())
		}
		s.row = vals
		if MatchesAll(s.ctx, s.preds, s.row) {
			s.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
			return s.row, true
		}
	}
	return nil, false
}

// Close is a no-op.
func (s *CoveringIndexScan) Close() { s.cur = nil }
