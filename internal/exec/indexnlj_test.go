package exec

import (
	"testing"

	"robustmap/internal/record"
)

func TestIndexNestedLoopJoinMatchesModel(t *testing.T) {
	e := newTestEnv(t, 1009)
	// Outer: rows keyed by values of column a (each unique in the table).
	var outer []Row
	for _, a := range []int64{0, 5, 99, 500, 1008, 5000 /* no match */} {
		outer = append(outer, Row{record.Int(a), record.Int(a * 10)})
	}
	j := NewIndexNestedLoopJoin(e.ctx, &SliceRows{Rows: outer}, e.ixA, 0)
	j.Open()
	defer j.Close()
	seen := 0
	for {
		row, ok := j.Next()
		if !ok {
			break
		}
		seen++
		// Output: outer (2 cols) ++ table row (4 cols); the joined table
		// row's a column must equal the outer key.
		if len(row) != 6 {
			t.Fatalf("joined row has %d columns", len(row))
		}
		if row[0].AsInt() != row[3].AsInt() {
			t.Fatalf("join key mismatch: outer %d vs inner a=%d",
				row[0].AsInt(), row[3].AsInt())
		}
	}
	if seen != 5 { // 5 outer keys exist in [0, 1009)
		t.Errorf("joined %d rows, want 5", seen)
	}
}

func TestIndexNestedLoopJoinDuplicateOuters(t *testing.T) {
	e := newTestEnv(t, 503)
	outer := []Row{
		{record.Int(7)}, {record.Int(7)}, {record.Int(7)},
	}
	j := NewIndexNestedLoopJoin(e.ctx, &SliceRows{Rows: outer}, e.ixA, 0)
	if got := Drain(j); got != 3 {
		t.Errorf("duplicate outers joined %d rows, want 3", got)
	}
}

func TestIndexNestedLoopJoinEmptyOuter(t *testing.T) {
	e := newTestEnv(t, 101)
	j := NewIndexNestedLoopJoin(e.ctx, &SliceRows{}, e.ixA, 0)
	if got := Drain(j); got != 0 {
		t.Errorf("empty outer joined %d rows", got)
	}
}

func TestIndexNestedLoopJoinRequiresSingleColumnIndex(t *testing.T) {
	e := newTestEnv(t, 101)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for two-column index")
		}
	}()
	NewIndexNestedLoopJoin(e.ctx, &SliceRows{}, e.ixAB, 0)
}

func TestIndexNestedLoopJoinCostLinearInOuter(t *testing.T) {
	e := newTestEnv(t, 8009)
	cost := func(outerN int64) int64 {
		var outer []Row
		for i := int64(0); i < outerN; i++ {
			outer = append(outer, Row{record.Int((i * 13) % e.n)})
		}
		e.ctx.Pool.FlushAll()
		e.ctx.Clock.Reset()
		Drain(NewIndexNestedLoopJoin(e.ctx, &SliceRows{Rows: outer}, e.ixA, 0))
		return int64(e.ctx.Clock.Now())
	}
	small, large := cost(8), cost(64)
	ratio := float64(large) / float64(small)
	// Each outer row pays ~1 leaf probe + 1 heap fetch (cold-ish): cost
	// grows roughly linearly with the outer size.
	if ratio < 3 || ratio > 12 {
		t.Errorf("8x outer gave %.1fx cost, want roughly linear", ratio)
	}
}
