package exec

import (
	"testing"

	"robustmap/internal/catalog"
	"robustmap/internal/iomodel"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// env is the shared test fixture: a table t(id, a, b) of n rows where a and
// b are independent permutations of [0, n) (a = i*37 mod n, b = i*61 mod n,
// both coprime with the n values used here), with secondary indexes on a,
// on b, and on (a, b).
type env struct {
	ctx  *Ctx
	tbl  *catalog.Table
	ixA  *catalog.Index
	ixB  *catalog.Index
	ixAB *catalog.Index
	n    int64
}

func newTestEnv(t testing.TB, n int64) *env {
	clock := simclock.New()
	dev := iomodel.NewDevice(iomodel.DefaultParams(), clock)
	pool := storage.NewPool(storage.NewDisk(), dev, clock, 512)
	sch := record.NewSchema(
		record.Column{Name: "id", Type: record.TypeInt64},
		record.Column{Name: "a", Type: record.TypeInt64},
		record.Column{Name: "b", Type: record.TypeInt64},
		record.Column{Name: "pad", Type: record.TypeString},
	)
	tbl := &catalog.Table{Name: "t", Schema: sch, Heap: storage.CreateHeap(pool)}
	pad := record.String_(string(make([]byte, 100))) // realistic ~120-byte rows
	for i := int64(0); i < n; i++ {
		enc, err := sch.Encode(nil, []record.Value{
			record.Int(i), record.Int((i * 37) % n), record.Int((i * 61) % n), pad,
		})
		if err != nil {
			t.Fatal(err)
		}
		tbl.Heap.Append(enc)
	}
	loader := catalog.Loader(pool, clock)
	ixA, err := catalog.BuildIndex("t_a", tbl, loader, true, "a")
	if err != nil {
		t.Fatal(err)
	}
	ixB, err := catalog.BuildIndex("t_b", tbl, loader, true, "b")
	if err != nil {
		t.Fatal(err)
	}
	ixAB, err := catalog.BuildIndex("t_ab", tbl, loader, true, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	clock.Reset()
	return &env{
		ctx: &Ctx{Clock: clock, Pool: pool, MemoryBudget: 1 << 30},
		tbl: tbl, ixA: ixA, ixB: ixB, ixAB: ixAB, n: n,
	}
}

// predLess builds the predicate col < hi on the table schema.
func predLess(col int, hi int64) ColPred {
	return ColPred{Col: col, Hi: record.Int(hi)}
}

// scanA returns an index range scan for a in [0, hi).
func (e *env) scanA(hi int64) *IndexRangeScan {
	return NewIndexRangeScan(e.ctx, e.ixA, nil, e.ixA.PrefixFor(record.Int(hi)))
}

// scanB returns an index range scan for b in [0, hi).
func (e *env) scanB(hi int64) *IndexRangeScan {
	return NewIndexRangeScan(e.ctx, e.ixB, nil, e.ixB.PrefixFor(record.Int(hi)))
}

// modelCount returns the true number of rows with a < ta && b < tb.
func (e *env) modelCount(ta, tb int64) int64 {
	var n int64
	for i := int64(0); i < e.n; i++ {
		if (i*37)%e.n < ta && (i*61)%e.n < tb {
			n++
		}
	}
	return n
}

func TestTableScanCountsAndPredicates(t *testing.T) {
	e := newTestEnv(t, 4001)
	if got := Drain(NewTableScan(e.ctx, e.tbl, nil)); got != e.n {
		t.Errorf("full scan = %d rows, want %d", got, e.n)
	}
	for _, ta := range []int64{0, 1, 100, e.n} {
		got := Drain(NewTableScan(e.ctx, e.tbl, []ColPred{predLess(1, ta)}))
		if got != ta {
			t.Errorf("scan a<%d = %d rows", ta, got)
		}
	}
	// Conjunction.
	got := Drain(NewTableScan(e.ctx, e.tbl, []ColPred{predLess(1, 500), predLess(2, 800)}))
	if want := e.modelCount(500, 800); got != want {
		t.Errorf("conjunctive scan = %d, want %d", got, want)
	}
}

func TestTableScanCostFlatAcrossSelectivity(t *testing.T) {
	e := newTestEnv(t, 4001)
	cost := func(ta int64) int64 {
		e.ctx.Pool.FlushAll()
		e.ctx.Clock.Reset()
		Drain(NewTableScan(e.ctx, e.tbl, []ColPred{predLess(1, ta)}))
		return int64(e.ctx.Clock.Now())
	}
	low := cost(1)
	high := cost(e.n)
	ratio := float64(high) / float64(low)
	if ratio > 1.5 {
		t.Errorf("table scan cost ratio across selectivity = %.2f, want <= 1.5", ratio)
	}
}

func TestIndexRangeScanMatchesModel(t *testing.T) {
	e := newTestEnv(t, 4001)
	for _, ta := range []int64{0, 1, 63, 1024, e.n} {
		it := e.scanA(ta)
		if got := DrainRIDs(it); got != ta {
			t.Errorf("index scan a<%d yielded %d RIDs", ta, got)
		}
	}
}

func TestIndexRangeScanRIDsPointAtMatchingRows(t *testing.T) {
	e := newTestEnv(t, 1009)
	it := e.scanA(50)
	it.Open()
	defer it.Close()
	for {
		rid, ok := it.Next()
		if !ok {
			break
		}
		rec, found := e.tbl.Heap.Fetch(rid)
		if !found {
			t.Fatalf("RID %v points at nothing", rid)
		}
		row, _, err := e.tbl.Schema.Decode(rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if row[1].AsInt() >= 50 {
			t.Fatalf("RID %v row has a=%d, want < 50", rid, row[1].AsInt())
		}
	}
}

func TestFetchVariantsAgreeWithTableScan(t *testing.T) {
	e := newTestEnv(t, 2003)
	const ta = 300
	want := Drain(NewTableScan(e.ctx, e.tbl, []ColPred{predLess(1, ta)}))

	trad := Drain(NewTraditionalFetch(e.ctx, e.tbl, e.scanA(ta), nil))
	impr := Drain(NewImprovedFetch(e.ctx, e.tbl, e.scanA(ta), nil, 0))
	bmp := Drain(NewBitmapFetch(e.ctx, e.tbl, e.scanA(ta), nil))
	if trad != want || impr != want || bmp != want {
		t.Errorf("fetch counts: traditional=%d improved=%d bitmap=%d want=%d",
			trad, impr, bmp, want)
	}
}

func TestFetchResidualPredicate(t *testing.T) {
	e := newTestEnv(t, 2003)
	const ta, tb = 400, 700
	want := e.modelCount(ta, tb)
	residual := []ColPred{predLess(2, tb)}
	trad := Drain(NewTraditionalFetch(e.ctx, e.tbl, e.scanA(ta), residual))
	impr := Drain(NewImprovedFetch(e.ctx, e.tbl, e.scanA(ta), residual, 0))
	bmp := Drain(NewBitmapFetch(e.ctx, e.tbl, e.scanA(ta), residual))
	if trad != want || impr != want || bmp != want {
		t.Errorf("residual fetch: traditional=%d improved=%d bitmap=%d want=%d",
			trad, impr, bmp, want)
	}
}

func TestImprovedFetchCheaperThanTraditionalAtModerateSelectivity(t *testing.T) {
	e := newTestEnv(t, 8009)
	const ta = 2000 // quarter of the table
	run := func(mk func() RowIter) int64 {
		e.ctx.Pool.FlushAll()
		e.ctx.Clock.Reset()
		Drain(mk())
		return int64(e.ctx.Clock.Now())
	}
	tradCost := run(func() RowIter { return NewTraditionalFetch(e.ctx, e.tbl, e.scanA(ta), nil) })
	imprCost := run(func() RowIter { return NewImprovedFetch(e.ctx, e.tbl, e.scanA(ta), nil, 0) })
	if imprCost*3 > tradCost {
		t.Errorf("improved fetch %d not ≥3x cheaper than traditional %d", imprCost, tradCost)
	}
}

func TestImprovedFetchSmallBatchesCostMore(t *testing.T) {
	// Page revisits across batches: the non-robustness at very large
	// results the paper observes in Figure 1.
	e := newTestEnv(t, 8009)
	run := func(batch int) int64 {
		e.ctx.Pool.FlushAll()
		e.ctx.Clock.Reset()
		Drain(NewImprovedFetch(e.ctx, e.tbl, e.scanA(e.n), nil, batch))
		return int64(e.ctx.Clock.Now())
	}
	oneBatch := run(int(e.n))
	tenBatches := run(int(e.n / 10))
	if tenBatches <= oneBatch {
		t.Errorf("10-batch fetch %d not costlier than 1-batch %d", tenBatches, oneBatch)
	}
}

func TestBitmapFetchDeduplicatesRIDs(t *testing.T) {
	e := newTestEnv(t, 503)
	// Feed each RID twice via a concatenating iterator.
	double := &concatRIDs{a: e.scanA(100), b: e.scanA(100)}
	got := Drain(NewBitmapFetch(e.ctx, e.tbl, double, nil))
	if got != 100 {
		t.Errorf("bitmap fetch with duplicate input = %d rows, want 100", got)
	}
}

type concatRIDs struct {
	a, b RIDIter
	onB  bool
}

func (c *concatRIDs) Open() {
	c.a.Open()
	c.b.Open()
}

func (c *concatRIDs) Next() (storage.RID, bool) {
	if !c.onB {
		if rid, ok := c.a.Next(); ok {
			return rid, true
		}
		c.onB = true
	}
	return c.b.Next()
}

func (c *concatRIDs) Close() {
	c.a.Close()
	c.b.Close()
}

func TestRIDIntersectionsMatchModel(t *testing.T) {
	e := newTestEnv(t, 2003)
	cases := []struct{ ta, tb int64 }{
		{0, 0}, {1, e.n}, {e.n, 1}, {100, 100}, {500, 1500}, {e.n, e.n},
	}
	for _, c := range cases {
		want := e.modelCount(c.ta, c.tb)
		merge := DrainRIDs(NewRIDMergeIntersect(e.ctx, e.scanA(c.ta), e.scanB(c.tb)))
		hashAB := DrainRIDs(NewRIDHashIntersect(e.ctx, e.scanA(c.ta), e.scanB(c.tb)))
		hashBA := DrainRIDs(NewRIDHashIntersect(e.ctx, e.scanB(c.tb), e.scanA(c.ta)))
		if merge != want || hashAB != want || hashBA != want {
			t.Errorf("(ta=%d,tb=%d): merge=%d hashAB=%d hashBA=%d want=%d",
				c.ta, c.tb, merge, hashAB, hashBA, want)
		}
	}
}

func TestRIDMergeEmitsSortedOrder(t *testing.T) {
	e := newTestEnv(t, 1009)
	it := NewRIDMergeIntersect(e.ctx, e.scanA(400), e.scanB(400))
	it.Open()
	defer it.Close()
	var prev storage.RID
	first := true
	for {
		rid, ok := it.Next()
		if !ok {
			break
		}
		if !first && !prev.Less(rid) {
			t.Fatalf("merge output out of order: %v then %v", prev, rid)
		}
		prev, first = rid, false
	}
}

func TestRIDMergeSymmetricCost(t *testing.T) {
	e := newTestEnv(t, 4001)
	cost := func(mk func() RIDIter) int64 {
		e.ctx.Pool.FlushAll()
		e.ctx.Clock.Reset()
		DrainRIDs(mk())
		return int64(e.ctx.Clock.Now())
	}
	ab := cost(func() RIDIter { return NewRIDMergeIntersect(e.ctx, e.scanA(100), e.scanB(3000)) })
	ba := cost(func() RIDIter { return NewRIDMergeIntersect(e.ctx, e.scanB(3000), e.scanA(100)) })
	diff := float64(ab-ba) / float64(ab)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Errorf("merge intersect asymmetric: ab=%d ba=%d (%.1f%%)", ab, ba, diff*100)
	}
}

func TestRIDHashAsymmetricCostUnderMemoryPressure(t *testing.T) {
	// Building on the small side fits in memory; building on the large side
	// forces grace partitioning through disk — the asymmetry the paper
	// contrasts with Figure 5's symmetry.
	e := newTestEnv(t, 4001)
	e.ctx.MemoryBudget = 1024 * RIDMemBytes // room for 1024 buffered RIDs
	cost := func(mk func() RIDIter) int64 {
		e.ctx.Pool.FlushAll()
		e.ctx.Clock.Reset()
		DrainRIDs(mk())
		return int64(e.ctx.Clock.Now())
	}
	smallBuild := cost(func() RIDIter { return NewRIDHashIntersect(e.ctx, e.scanA(50), e.scanB(3500)) })
	largeBuild := cost(func() RIDIter { return NewRIDHashIntersect(e.ctx, e.scanB(3500), e.scanA(50)) })
	if smallBuild >= largeBuild {
		t.Errorf("hash intersect small-build %d not cheaper than large-build %d",
			smallBuild, largeBuild)
	}
	// Correctness is unaffected by spilling.
	e.ctx.MemoryBudget = 256 * RIDMemBytes
	got := DrainRIDs(NewRIDHashIntersect(e.ctx, e.scanB(3500), e.scanA(50)))
	if want := e.modelCount(50, 3500); got != want {
		t.Errorf("spilling hash intersect = %d, want %d", got, want)
	}
}
