package exec

import (
	"sync"
	"time"

	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// Batch-at-a-time execution (the MonetDB/X100 vectorization idiom).
//
// Operators that implement BatchOperator exchange fixed-capacity row
// batches instead of single rows, amortizing interface dispatch and clock
// charges across BatchCapacity rows. The virtual cost model is unchanged:
// per-row CPU charges are summed per batch (addition is commutative, so the
// clock totals are bit-identical to row-at-a-time execution), and the
// sequence of buffer-pool and device operations — the stateful part of the
// cost model — is exactly the per-row sequence. Plans therefore measure
// byte-identical virtual times in either mode; batching only reduces the
// wall-clock cost of measuring them.
//
// Every batch-capable operator remains a RowIter. Mode is chosen by the
// consumer: a consumer that calls NextBatch drives its subtree in batch
// mode; one that calls Next drives it row-at-a-time. Operators whose I/O
// interleaves with their consumer's I/O in row mode (Sort's spill, the
// equality joins, MDAM) deliberately stay row-only, so a tree containing
// them degrades to row-at-a-time below that point and the I/O interleaving
// the cost model observes is preserved.

// BatchCapacity is the number of rows exchanged per NextBatch call.
const BatchCapacity = 1024

// Batch is a vector of rows with an optional selection vector.
//
// Ownership rules:
//   - A batch returned by NextBatch belongs to the producer and is valid
//     only until the producer's next NextBatch (or Close) call.
//   - Values in a batch may alias the batch's arena (see
//     record.Schema.DecodeArena); retain them only via record.Value.Clone.
//   - A consumer may install its own selection vector on the batch it
//     received (that is how Filter narrows a batch without copying) but
//     must not grow or reorder the underlying rows.
type Batch struct {
	rows [][]record.Value
	n    int     // physical rows filled
	sel  []int32 // live physical row indices; nil means all n rows
	// arena backs variable-length values of rows decoded into this batch.
	arena []byte
}

// Len returns the number of live (selected) rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// Row returns the i-th live row.
func (b *Batch) Row(i int) Row {
	if b.sel != nil {
		return b.rows[b.sel[i]]
	}
	return b.rows[i]
}

// reset empties the batch for refilling, keeping row and arena capacity.
func (b *Batch) reset() {
	b.n = 0
	b.sel = nil
	b.arena = b.arena[:0]
}

// rowBuf returns the next writable row storage, length 0 with whatever
// capacity previous fills left behind.
func (b *Batch) rowBuf() Row {
	if b.n == len(b.rows) {
		b.rows = append(b.rows, nil)
	}
	return b.rows[b.n][:0]
}

// store writes back a (possibly re-allocated) row buffer without emitting
// it; the next rowBuf call reuses the same slot. Used for rows that were
// decoded but rejected by a predicate.
func (b *Batch) store(r Row) { b.rows[b.n] = r }

// commit emits the row filled into rowBuf.
func (b *Batch) commit(r Row) {
	b.rows[b.n] = r
	b.n++
}

// fillFromRows fills the batch from a row-mode pull function, copying value
// structs (safe: row-mode producers back variable-length payloads on the
// heap). It reports whether the source was exhausted; a full batch returns
// false without probing further, so the source's Next is never called after
// it has reported exhaustion.
func (b *Batch) fillFromRows(next func() (Row, bool)) (exhausted bool) {
	b.reset()
	for b.n < BatchCapacity {
		row, ok := next()
		if !ok {
			return true
		}
		b.commit(append(b.rowBuf(), row...))
	}
	return false
}

// BatchOperator is the batch-at-a-time iterator. NextBatch returns the next
// non-empty batch, or (nil, false) when exhausted; it must not be called
// again after returning false. Open and Close are shared with RowIter — all
// batch-capable operators implement both interfaces.
type BatchOperator interface {
	Open()
	NextBatch() (*Batch, bool)
	Close()
}

// RIDBatcher is a RIDIter that can also deliver RIDs in bounded batches.
// NextRIDBatch returns between 1 and max RIDs (the slice is valid until the
// next call), or (nil, false) when exhausted; it must not be called again
// after returning false. The bound matters for equivalence: a budgeted
// consumer (ImprovedFetch's refill) stops the producer's index I/O at
// exactly the entry where row-at-a-time consumption would have stopped.
type RIDBatcher interface {
	RIDIter
	NextRIDBatch(max int) ([]storage.RID, bool)
}

// ridBatchCap bounds a single NextRIDBatch result.
const ridBatchCap = BatchCapacity

// batchPool recycles batch buffers across queries and sessions so
// steady-state execution allocates nothing per row (and, once warm, nothing
// per query either).
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

func getBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.reset()
	return b
}

func putBatch(b *Batch) {
	if b != nil {
		batchPool.Put(b)
	}
}

// matchesAllTally evaluates a predicate conjunction with short-circuiting,
// accumulating the predicate CPU cost into cpu instead of charging the
// clock per predicate. The count of evaluated predicates — and therefore
// the accumulated cost — is identical to MatchesAll's.
func matchesAllTally(preds []ColPred, row Row, cpu *time.Duration) bool {
	for _, p := range preds {
		*cpu += CostPredicate
		if !p.Matches(row) {
			return false
		}
	}
	return true
}

// chargeDur flushes an accumulated duration to the clock as one advance.
func (c *Ctx) chargeDur(acct simclock.Account, d time.Duration) {
	if d > 0 {
		c.Clock.Advance(acct, d)
	}
}

// AsBatchOperator adapts any RowIter to a BatchOperator. Native batch
// operators are returned unchanged; row-only iterators are wrapped in an
// adapter that copies rows into batches. The adapter preserves cost-model
// equivalence: copying charges nothing, and the wrapped iterator performs
// its I/O in the same order it would under row-at-a-time consumption.
func AsBatchOperator(it RowIter) BatchOperator {
	if bo, ok := it.(BatchOperator); ok {
		return bo
	}
	return &rowBatchAdapter{inner: it}
}

// rowBatchAdapter lifts a row-only iterator into the batch interface.
type rowBatchAdapter struct {
	inner RowIter
	batch *Batch
	eof   bool
}

func (a *rowBatchAdapter) Open() { a.inner.Open() }

func (a *rowBatchAdapter) Next() (Row, bool) { return a.inner.Next() }

func (a *rowBatchAdapter) NextBatch() (*Batch, bool) {
	if a.eof {
		return nil, false
	}
	if a.batch == nil {
		a.batch = getBatch()
	}
	a.eof = a.batch.fillFromRows(a.inner.Next)
	if a.batch.n == 0 {
		return nil, false
	}
	return a.batch, true
}

func (a *rowBatchAdapter) Close() {
	a.inner.Close()
	putBatch(a.batch)
	a.batch = nil
}

// AsRowIter adapts a BatchOperator to a RowIter, serving rows out of each
// batch in order. Rows handed out may alias the current batch (including
// its arena); consumers that retain values across Next calls must Clone
// them — the same contract RowIter already states for reused rows.
func AsRowIter(op BatchOperator) RowIter {
	if it, ok := op.(RowIter); ok {
		return it
	}
	return &batchRowAdapter{inner: op}
}

// batchRowAdapter serves rows one at a time from a batch producer.
type batchRowAdapter struct {
	inner BatchOperator
	b     *Batch
	pos   int
	eof   bool
}

func (a *batchRowAdapter) Open() { a.inner.Open() }

func (a *batchRowAdapter) Next() (Row, bool) {
	for {
		if a.b != nil && a.pos < a.b.Len() {
			row := a.b.Row(a.pos)
			a.pos++
			return row, true
		}
		if a.eof {
			return nil, false
		}
		b, ok := a.inner.NextBatch()
		if !ok {
			a.eof = true
			a.b = nil
			return nil, false
		}
		a.b = b
		a.pos = 0
	}
}

func (a *batchRowAdapter) Close() { a.inner.Close() }
