package exec

import (
	"sort"
	"testing"

	"robustmap/internal/record"
)

func TestNestedLoopJoinMatchesModel(t *testing.T) {
	e := newTestEnv(t, 101)
	left := randRows(150, 40, 21)
	right := randRows(200, 40, 22)
	want := modelJoin(left, right)
	j := NewNestedLoopJoin(e.ctx, &SliceRows{Rows: left}, &SliceRows{Rows: right},
		[]int{0}, []int{0})
	got := joinResultMultiset(collectRows(j))
	if !equalMultisets(got, want) {
		t.Error("nested loop join multiset mismatch")
	}
}

func TestNestedLoopJoinEmptyInputs(t *testing.T) {
	e := newTestEnv(t, 101)
	one := []Row{{record.Int(1), record.Int(2)}}
	for i, c := range []struct{ l, r []Row }{{nil, one}, {one, nil}, {nil, nil}} {
		j := NewNestedLoopJoin(e.ctx, &SliceRows{Rows: c.l}, &SliceRows{Rows: c.r},
			[]int{0}, []int{0})
		if out := collectRows(j); len(out) != 0 {
			t.Errorf("case %d: %d rows from empty input", i, len(out))
		}
	}
}

func TestNestedLoopJoinQuadraticCost(t *testing.T) {
	e := newTestEnv(t, 101)
	cost := func(n int) int64 {
		e.ctx.Clock.Reset()
		j := NewNestedLoopJoin(e.ctx,
			&SliceRows{Rows: randRows(n, 1<<30, 5)}, // unique keys: no matches
			&SliceRows{Rows: randRows(n, 1<<30, 6)},
			[]int{0}, []int{0})
		Drain(j)
		return int64(e.ctx.Clock.Now())
	}
	small, large := cost(100), cost(400)
	ratio := float64(large) / float64(small)
	if ratio < 10 || ratio > 24 {
		t.Errorf("4x input gave %.1fx cost; want ~16x (quadratic)", ratio)
	}
}

func TestSpillingHashAggregateMatchesInMemory(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := twoColSchema()
	rows := randRows(5000, 600, 31)
	aggs := []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}}

	inMem := collectRows(NewHashAggregate(e.ctx, &SliceRows{Rows: rows}, []int{0}, aggs))

	// Budget for ~50 groups of 600: forces spilling.
	e.ctx.MemoryBudget = 50 * groupStateBytes([]int{0}, aggs)
	sp := NewSpillingHashAggregate(e.ctx, &SliceRows{Rows: rows}, sch, []int{0}, aggs)
	spilled := collectRows(sp)
	if !sp.Spilled {
		t.Fatal("aggregate did not spill under a tiny budget")
	}
	if len(spilled) != len(inMem) {
		t.Fatalf("spilled aggregate has %d groups, in-memory %d", len(spilled), len(inMem))
	}
	// Compare as sets keyed by group value.
	key := func(r Row) int64 { return r[0].AsInt() }
	sort.Slice(spilled, func(i, j int) bool { return key(spilled[i]) < key(spilled[j]) })
	sort.Slice(inMem, func(i, j int) bool { return key(inMem[i]) < key(inMem[j]) })
	for i := range spilled {
		for c := range spilled[i] {
			if record.Compare(spilled[i][c], inMem[i][c]) != 0 {
				t.Fatalf("group %d col %d: spilled=%v inmem=%v",
					i, c, spilled[i][c], inMem[i][c])
			}
		}
	}
}

func TestSpillingHashAggregateNoSpillWithinBudget(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := twoColSchema()
	rows := randRows(1000, 20, 33)
	aggs := []AggSpec{{Kind: AggCount}}
	e.ctx.MemoryBudget = 1 << 30
	sp := NewSpillingHashAggregate(e.ctx, &SliceRows{Rows: rows}, sch, []int{0}, aggs)
	out := collectRows(sp)
	if sp.Spilled {
		t.Error("spilled despite a huge budget")
	}
	if len(out) != 20 {
		t.Errorf("groups = %d, want 20", len(out))
	}
}

func TestSpillingHashAggregateChargesSpillIO(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := twoColSchema()
	rows := randRows(5000, 600, 35)
	aggs := []AggSpec{{Kind: AggCount}}
	e.ctx.MemoryBudget = 50 * groupStateBytes([]int{0}, aggs)
	e.ctx.Clock.Reset()
	sp := NewSpillingHashAggregate(e.ctx, &SliceRows{Rows: rows}, sch, []int{0}, aggs)
	Drain(sp)
	if e.ctx.Clock.Spent("io.spill") == 0 {
		t.Error("spilling aggregate charged no spill I/O")
	}
}
