package exec

import (
	"testing"
)

// Per-operator micro-benchmarks for the batched hot path. Each iteration
// is one "cell" in sweep terms: build the operator tree, drain it to
// completion, and let the virtual clock absorb the charges. The first
// iteration pays the cold buffer pool; steady state is what the sweeps
// see, since sessions reuse pools across cells.

func BenchmarkTableScanCell(b *testing.B) {
	e := newTestEnv(b, 20011)
	aCol := e.tbl.Schema.MustOrdinal("a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Drain(NewTableScan(e.ctx, e.tbl, []ColPred{predLess(aCol, e.n/2)}))
	}
}

func BenchmarkFetchCell(b *testing.B) {
	e := newTestEnv(b, 20011)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Drain(NewImprovedFetch(e.ctx, e.tbl, e.scanA(e.n/8), nil, 0))
	}
}

func BenchmarkFilterProject(b *testing.B) {
	e := newTestEnv(b, 20011)
	aCol := e.tbl.Schema.MustOrdinal("a")
	bCol := e.tbl.Schema.MustOrdinal("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan := NewTableScan(e.ctx, e.tbl, nil)
		filt := NewFilter(e.ctx, scan, []ColPred{predLess(aCol, e.n/2), predLess(bCol, e.n/2)})
		Drain(NewProject(e.ctx, filt, []int{aCol, bCol}))
	}
}

// TestBatchedScanFilterProjectAllocFree pins the tentpole's allocation
// contract: once the pipeline's buffers are warm, pulling further batches
// through scan → filter → project allocates nothing — no per-row and no
// per-batch garbage. The table is sized to fit the buffer pool so the
// guard measures the executor, not pool eviction.
func TestBatchedScanFilterProjectAllocFree(t *testing.T) {
	e := newTestEnv(t, 20011)
	aCol := e.tbl.Schema.MustOrdinal("a")
	bCol := e.tbl.Schema.MustOrdinal("b")

	scan := NewTableScan(e.ctx, e.tbl, nil)
	filt := NewFilter(e.ctx, scan, []ColPred{predLess(aCol, e.n/2), predLess(bCol, e.n/2)})
	proj := NewProject(e.ctx, filt, []int{aCol, bCol})

	var root BatchOperator = proj
	root.Open()
	defer root.Close()
	// Warm up: first batches grow row buffers, arenas, and selection
	// vectors to steady-state capacity.
	for i := 0; i < 3; i++ {
		if _, ok := root.NextBatch(); !ok {
			t.Fatal("pipeline exhausted during warm-up")
		}
	}
	avg := testing.AllocsPerRun(8, func() {
		if _, ok := root.NextBatch(); !ok {
			t.Fatal("pipeline exhausted during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("batched scan→filter→project allocates %v per batch in steady state, want 0", avg)
	}
}

// TestBatchedTableScanAllocFree is the same guard for a bare scan.
func TestBatchedTableScanAllocFree(t *testing.T) {
	e := newTestEnv(t, 20011)
	scan := NewTableScan(e.ctx, e.tbl, nil)
	var root BatchOperator = scan
	root.Open()
	defer root.Close()
	for i := 0; i < 3; i++ {
		if _, ok := root.NextBatch(); !ok {
			t.Fatal("scan exhausted during warm-up")
		}
	}
	avg := testing.AllocsPerRun(8, func() {
		if _, ok := root.NextBatch(); !ok {
			t.Fatal("scan exhausted during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("batched table scan allocates %v per batch in steady state, want 0", avg)
	}
}
