package exec

import (
	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// StreamAggregate groups rows that arrive sorted on the group-by columns,
// holding exactly one group's state at a time. Its memory footprint is
// constant regardless of group count — the gracefully degrading
// alternative to HashAggregate, whose state grows with the number of
// groups. The aggregation-robustness experiment maps the two against each
// other (the paper's §4 names aggregation among the algorithms to map
// next).
type StreamAggregate struct {
	ctx     *Ctx
	input   RowIter
	groupBy []int
	aggs    []AggSpec

	cur       *aggState
	pending   Row
	havePend  bool
	exhausted bool
	out       Row
	batch     *Batch
	eof       bool
}

// NewStreamAggregate constructs the streaming aggregate; the input must be
// sorted on the group-by columns (wrap it in Sort if it is not).
func NewStreamAggregate(ctx *Ctx, input RowIter, groupBy []int, aggs []AggSpec) *StreamAggregate {
	return &StreamAggregate{ctx: ctx, input: input, groupBy: groupBy, aggs: aggs}
}

// Open opens the input.
func (a *StreamAggregate) Open() { a.input.Open() }

func (a *StreamAggregate) sameGroup(row Row) bool {
	for _, g := range a.groupBy {
		a.ctx.ChargeCPU(simclock.AccountCompare, CostSortCompare, 1)
		if record.Compare(a.cur.groupVals[indexOf(a.groupBy, g)], row[g]) != 0 {
			return false
		}
	}
	return true
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func (a *StreamAggregate) startGroup(row Row) {
	a.cur = &aggState{
		counts: make([]int64, len(a.aggs)),
		sums:   make([]float64, len(a.aggs)),
		mins:   make([]record.Value, len(a.aggs)),
		maxs:   make([]record.Value, len(a.aggs)),
	}
	for _, g := range a.groupBy {
		a.cur.groupVals = append(a.cur.groupVals, row[g])
	}
	a.accumulate(row)
}

func (a *StreamAggregate) accumulate(row Row) {
	for i, spec := range a.aggs {
		a.cur.counts[i]++
		switch spec.Kind {
		case AggSum:
			a.cur.sums[i] += row[spec.Col].AsFloat()
		case AggMin:
			if a.cur.mins[i].IsNull() || record.Compare(row[spec.Col], a.cur.mins[i]) < 0 {
				a.cur.mins[i] = row[spec.Col]
			}
		case AggMax:
			if a.cur.maxs[i].IsNull() || record.Compare(row[spec.Col], a.cur.maxs[i]) > 0 {
				a.cur.maxs[i] = row[spec.Col]
			}
		}
	}
}

// emit renders the current group's output row.
func (a *StreamAggregate) emit() Row {
	a.out = a.out[:0]
	a.out = append(a.out, a.cur.groupVals...)
	for i, spec := range a.aggs {
		switch spec.Kind {
		case AggCount:
			a.out = append(a.out, record.Int(a.cur.counts[i]))
		case AggSum:
			a.out = append(a.out, record.Float(a.cur.sums[i]))
		case AggMin:
			a.out = append(a.out, a.cur.mins[i])
		case AggMax:
			a.out = append(a.out, a.cur.maxs[i])
		}
	}
	a.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return a.out
}

// Next returns the next completed group.
func (a *StreamAggregate) Next() (Row, bool) {
	if a.exhausted {
		return nil, false
	}
	// Seed the first group.
	if a.cur == nil {
		var row Row
		var ok bool
		if a.havePend {
			row, ok = a.pending, true
			a.havePend = false
		} else {
			row, ok = a.input.Next()
		}
		if !ok {
			a.exhausted = true
			return nil, false
		}
		a.startGroup(copyRowVals(row))
	}
	for {
		row, ok := a.input.Next()
		if !ok {
			a.exhausted = true
			return a.emit(), true
		}
		if a.sameGroup(row) {
			a.accumulate(row)
			continue
		}
		// Group boundary: emit the finished group, stash the new row.
		out := a.emit()
		a.pending = copyRowVals(row)
		a.havePend = true
		a.cur = nil
		// Prepare next group lazily on the following Next call.
		a.startGroup(a.pending)
		a.havePend = false
		return out, true
	}
}

// NextBatch returns completed groups in batches. The input is consumed
// row-at-a-time: the canonical input of a streaming aggregate is a Sort,
// which is row-only, and per-group comparison charges must follow the exact
// short-circuit counts of the row path anyway.
func (a *StreamAggregate) NextBatch() (*Batch, bool) {
	if a.eof {
		return nil, false
	}
	if a.batch == nil {
		a.batch = getBatch()
	}
	a.eof = a.batch.fillFromRows(func() (Row, bool) { return a.Next() })
	if a.batch.n == 0 {
		return nil, false
	}
	return a.batch, true
}

// Close closes the input.
func (a *StreamAggregate) Close() {
	a.input.Close()
	putBatch(a.batch)
	a.batch = nil
}
