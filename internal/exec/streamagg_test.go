package exec

import (
	"testing"

	"robustmap/internal/record"
)

func sortedGroupRows(groups, perGroup int64) []Row {
	var rows []Row
	for g := int64(0); g < groups; g++ {
		for i := int64(0); i < perGroup; i++ {
			rows = append(rows, Row{record.Int(g), record.Int(g*perGroup + i)})
		}
	}
	return rows
}

func TestStreamAggregateMatchesHashAggregate(t *testing.T) {
	e := newTestEnv(t, 101)
	rows := sortedGroupRows(7, 13)
	aggs := []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1}}

	stream := collectRows(NewStreamAggregate(e.ctx, &SliceRows{Rows: rows}, []int{0}, aggs))
	hash := collectRows(NewHashAggregate(e.ctx, &SliceRows{Rows: rows}, []int{0}, aggs))

	if len(stream) != len(hash) || len(stream) != 7 {
		t.Fatalf("group counts: stream=%d hash=%d want 7", len(stream), len(hash))
	}
	for i := range stream {
		for c := range stream[i] {
			if record.Compare(stream[i][c], hash[i][c]) != 0 {
				t.Errorf("group %d col %d: stream=%v hash=%v", i, c, stream[i][c], hash[i][c])
			}
		}
	}
}

func TestStreamAggregateSingleGroup(t *testing.T) {
	e := newTestEnv(t, 101)
	rows := sortedGroupRows(1, 50)
	out := collectRows(NewStreamAggregate(e.ctx, &SliceRows{Rows: rows}, []int{0},
		[]AggSpec{{Kind: AggCount}}))
	if len(out) != 1 || out[0][1].AsInt() != 50 {
		t.Errorf("single group output = %v", out)
	}
}

func TestStreamAggregateEmptyInput(t *testing.T) {
	e := newTestEnv(t, 101)
	out := collectRows(NewStreamAggregate(e.ctx, &SliceRows{}, []int{0},
		[]AggSpec{{Kind: AggCount}}))
	if len(out) != 0 {
		t.Errorf("empty input produced %d groups", len(out))
	}
}

func TestStreamAggregateGroupOfOne(t *testing.T) {
	e := newTestEnv(t, 101)
	rows := sortedGroupRows(20, 1)
	out := collectRows(NewStreamAggregate(e.ctx, &SliceRows{Rows: rows}, []int{0},
		[]AggSpec{{Kind: AggCount}, {Kind: AggMax, Col: 1}}))
	if len(out) != 20 {
		t.Fatalf("groups = %d, want 20", len(out))
	}
	for i, r := range out {
		if r[1].AsInt() != 1 {
			t.Errorf("group %d count = %d", i, r[1].AsInt())
		}
	}
}

func TestStreamAggregateMultiKeyGroups(t *testing.T) {
	e := newTestEnv(t, 101)
	var rows []Row
	for a := int64(0); a < 3; a++ {
		for b := int64(0); b < 4; b++ {
			for k := int64(0); k < 2; k++ {
				rows = append(rows, Row{record.Int(a), record.Int(b), record.Int(k)})
			}
		}
	}
	out := collectRows(NewStreamAggregate(e.ctx, &SliceRows{Rows: rows}, []int{0, 1},
		[]AggSpec{{Kind: AggCount}}))
	if len(out) != 12 {
		t.Fatalf("groups = %d, want 12", len(out))
	}
	for _, r := range out {
		if r[2].AsInt() != 2 {
			t.Errorf("group (%v,%v) count = %d", r[0], r[1], r[2].AsInt())
		}
	}
}
