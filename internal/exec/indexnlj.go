package exec

import (
	"robustmap/internal/catalog"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// IndexNestedLoopJoin probes a secondary index once per outer row and
// fetches the matching base rows — the classic plan for tiny outer inputs.
// Its robustness profile is the mirror image of the paper's traditional
// index scan: unbeatable when the outer side is a handful of rows, and
// linear-in-outer random I/O that grows without bound when a cardinality
// estimate was wrong. It exists here for exactly that robustness contrast
// (the paper's §3: "the strongest influences are data volume … and
// resources").
type IndexNestedLoopJoin struct {
	ctx      *Ctx
	outer    RowIter
	ix       *catalog.Index
	outerKey int // ordinal of the join key in the outer row
	keyType  record.Type

	curOuter Row
	rids     []storage.RID
	pos      int
	fetchRow Row
	out      Row
}

// NewIndexNestedLoopJoin constructs the join: for each outer row, the
// index is probed for entries whose (single) key column equals the outer
// join key, and the base rows are fetched.
func NewIndexNestedLoopJoin(ctx *Ctx, outer RowIter, ix *catalog.Index, outerKey int) *IndexNestedLoopJoin {
	if len(ix.Columns) != 1 {
		panic("exec: IndexNestedLoopJoin requires a single-column index")
	}
	return &IndexNestedLoopJoin{
		ctx: ctx, outer: outer, ix: ix, outerKey: outerKey,
		keyType: ix.Table.Schema.Column(ix.Ordinals[0]).Type,
	}
}

// Open opens the outer input.
func (j *IndexNestedLoopJoin) Open() { j.outer.Open() }

// probe collects the RIDs matching the outer key.
func (j *IndexNestedLoopJoin) probe(key record.Value) {
	j.rids = j.rids[:0]
	j.pos = 0
	lo := record.NormalizeValue(nil, key)
	hi := record.KeySuccessor(lo)
	cur := j.ix.Tree.Seek(lo, hi)
	for cur.Next() {
		j.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, 1)
		j.rids = append(j.rids, catalog.DecodeRIDSuffix(cur.Key()))
	}
}

// Next returns the next joined row: outer columns followed by the fetched
// inner row's columns.
func (j *IndexNestedLoopJoin) Next() (Row, bool) {
	for {
		for j.pos < len(j.rids) {
			rid := j.rids[j.pos]
			j.pos++
			var hit bool
			j.fetchRow, hit = fetchRow(j.ctx, j.ix.Table, rid, nil, j.fetchRow)
			if !hit {
				continue
			}
			j.out = j.out[:0]
			j.out = append(j.out, j.curOuter...)
			j.out = append(j.out, j.fetchRow...)
			j.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
			return j.out, true
		}
		row, ok := j.outer.Next()
		if !ok {
			return nil, false
		}
		j.curOuter = copyRowVals(row)
		j.probe(row[j.outerKey])
	}
}

// Close closes the outer input.
func (j *IndexNestedLoopJoin) Close() { j.outer.Close() }
