package exec

import (
	"fmt"
	"time"

	"robustmap/internal/catalog"
	"robustmap/internal/core"
	"robustmap/internal/storage"
)

// Parallel execution support for the paper's §4 roadmap ("visualizations
// of entire query execution plans including parallel ones") in the style
// of the shared-nothing study the paper cites [SD89].
//
// The simulated cluster gives each worker its own device and buffer pool
// (shared-nothing I/O paths) over the shared disk image. A parallel plan's
// elapsed time is the makespan — the maximum of the workers' virtual
// times — plus a per-row coordinator merge charge. Skewed partitions
// therefore degrade the makespan toward the largest partition's cost,
// which is exactly the robustness effect the parallel experiment maps.

// PageRange restricts a scan to heap pages [Lo, Hi).
type PageRange struct {
	Lo, Hi storage.PageNo
}

// RangedTableScan is a TableScan over a contiguous page range — the
// per-worker fragment of a partitioned parallel scan.
type RangedTableScan struct {
	inner *TableScan
	rng   PageRange
}

// NewRangedTableScan constructs the fragment scan.
func NewRangedTableScan(ctx *Ctx, t *catalog.Table, preds []ColPred, rng PageRange) *RangedTableScan {
	if rng.Lo < 0 || rng.Hi < rng.Lo {
		panic(fmt.Sprintf("exec: invalid page range [%d, %d)", rng.Lo, rng.Hi))
	}
	return &RangedTableScan{inner: NewTableScan(ctx, t, preds), rng: rng}
}

// Open positions the scan before the range.
func (s *RangedTableScan) Open() {
	s.inner.Open()
	if s.rng.Hi < s.inner.pages {
		s.inner.pages = s.rng.Hi
	}
	s.inner.pg = s.rng.Lo - 1
}

// Next returns the next matching row within the range.
func (s *RangedTableScan) Next() (Row, bool) { return s.inner.Next() }

// Close releases the current pin.
func (s *RangedTableScan) Close() { s.inner.Close() }

// WorkerResult is one worker's measured fragment execution.
type WorkerResult struct {
	Rows int64
	Time time.Duration
}

// ParallelResult aggregates a parallel execution.
type ParallelResult struct {
	Rows     int64
	Workers  []WorkerResult
	Makespan time.Duration // max worker time + coordinator merge
	Total    time.Duration // sum of worker times (resource cost)
}

// Speedup returns Total/Makespan — the effective parallelism achieved.
func (r ParallelResult) Speedup() float64 {
	if r.Makespan <= 0 {
		return 1
	}
	return float64(r.Total) / float64(r.Makespan)
}

// CoordinatorMergeCost is the per-row charge for merging worker outputs.
const CoordinatorMergeCost = 15 * time.Nanosecond

// RunParallel executes one iterator per worker, each built against its own
// fresh context (own clock, device, pool), and reports the makespan. The
// mkWorker callback receives the worker index and its private context.
// Worker fragments run serially on the calling goroutine; use
// RunParallelOn to execute them on real goroutines.
func RunParallel(workers int, mkCtx func(worker int) *Ctx,
	mkWorker func(worker int, ctx *Ctx) RowIter) ParallelResult {
	return RunParallelOn(core.SerialExecutor{}, workers, mkCtx, mkWorker)
}

// RunParallelOn is RunParallel with the worker fragments scheduled by the
// given executor. Virtual-time results are identical for every executor —
// each fragment owns its clock, device, and pool, and the reduction over
// worker results happens in worker order after all fragments finish — but
// a parallel executor overlaps the real (host) work of simulating the
// fragments, exactly as sweeps overlap measurement cells.
func RunParallelOn(ex core.SweepExecutor, workers int, mkCtx func(worker int) *Ctx,
	mkWorker func(worker int, ctx *Ctx) RowIter) ParallelResult {

	if workers < 1 {
		panic("exec: RunParallel with no workers")
	}
	res := ParallelResult{Workers: make([]WorkerResult, workers)}
	ex.Execute(workers, func(w int) {
		ctx := mkCtx(w)
		rows := Drain(mkWorker(w, ctx))
		res.Workers[w] = WorkerResult{Rows: rows, Time: ctx.Clock.Now()}
	})
	var maxTime time.Duration
	for _, wr := range res.Workers {
		res.Rows += wr.Rows
		res.Total += wr.Time
		if wr.Time > maxTime {
			maxTime = wr.Time
		}
	}
	res.Makespan = maxTime + CoordinatorMergeCost*time.Duration(res.Rows)
	res.Total += CoordinatorMergeCost * time.Duration(res.Rows)
	return res
}

// SkewedRanges partitions [0, pages) into n contiguous ranges whose sizes
// follow a geometric skew: skew = 1 gives equal ranges; skew = 2 gives
// each range twice the pages of the next. This models the partition-size
// imbalance whose effect on parallel join performance [SD89] examines.
func SkewedRanges(pages storage.PageNo, n int, skew float64) []PageRange {
	if n < 1 || skew < 1 {
		panic(fmt.Sprintf("exec: SkewedRanges(n=%d, skew=%g)", n, skew))
	}
	weights := make([]float64, n)
	w, total := 1.0, 0.0
	for i := n - 1; i >= 0; i-- {
		weights[i] = w
		total += w
		w *= skew
	}
	out := make([]PageRange, n)
	at := storage.PageNo(0)
	for i := 0; i < n; i++ {
		share := storage.PageNo(float64(pages) * weights[i] / total)
		if i == n-1 {
			share = pages - at
		}
		out[i] = PageRange{Lo: at, Hi: at + share}
		at += share
	}
	return out
}
