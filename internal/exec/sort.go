package exec

import (
	"container/heap"
	"sort"

	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// SpillPolicy selects how Sort degrades when its input exceeds memory.
//
// The paper's §4 predicts exactly this experiment: "we expect that some
// implementations of sorting spill their entire input to disk if the input
// size exceeds the memory size by merely a single record. Those sort
// implementations lacking graceful degradation will show discontinuous
// execution costs." PolicyDegenerate is that implementation;
// PolicyGraceful is the robust alternative. The sortspill experiment maps
// both.
type SpillPolicy int

const (
	// PolicyGraceful keeps the first memory-full of rows in memory as run
	// zero and spills only the overflow; the cost near the memory boundary
	// is continuous in the input size.
	PolicyGraceful SpillPolicy = iota
	// PolicyDegenerate spills the entire input — including the prefix that
	// fit in memory — as soon as a single row exceeds the budget,
	// producing a cost discontinuity at the boundary.
	PolicyDegenerate
)

// String names the policy for reports.
func (p SpillPolicy) String() string {
	switch p {
	case PolicyGraceful:
		return "graceful"
	case PolicyDegenerate:
		return "degenerate"
	default:
		return "unknown"
	}
}

// Sort is an external merge sort over its input with a byte memory budget
// from the context.
type Sort struct {
	ctx    *Ctx
	input  RowIter
	schema *record.Schema
	keys   []int
	policy SpillPolicy

	built    bool
	memRows  []Row
	memPos   int
	merger   *runMerger
	rowBytes int
}

// NewSort constructs a sort on the given key column ordinals.
func NewSort(ctx *Ctx, input RowIter, schema *record.Schema, keys []int, policy SpillPolicy) *Sort {
	return &Sort{ctx: ctx, input: input, schema: schema, keys: keys, policy: policy,
		rowBytes: schema.EncodedSizeEstimate()}
}

// Open opens the input; sorting is deferred to the first Next.
func (s *Sort) Open() { s.input.Open() }

func (s *Sort) compare(a, b Row) int {
	s.ctx.ChargeCPU(simclock.AccountCompare, CostSortCompare, 1)
	for _, k := range s.keys {
		if c := record.Compare(a[k], b[k]); c != 0 {
			return c
		}
	}
	return 0
}

// sortRows sorts a slice of rows; comparison costs are charged per call
// inside compare, so the virtual cost tracks the real comparison count.
func (s *Sort) sortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool { return s.compare(rows[i], rows[j]) < 0 })
}

func (s *Sort) build() {
	s.built = true
	maxRows := s.ctx.Budget() / int64(s.rowBytes)
	if maxRows < 1 {
		maxRows = 1
	}
	copyRow := func(r Row) Row {
		out := make(Row, len(r))
		copy(out, r)
		return out
	}
	spill := func(rows []Row) spillRun {
		s.sortRows(rows)
		w := newRunWriter(s.ctx, s.schema)
		for _, r := range rows {
			w.write(r)
		}
		return w.finish()
	}

	// Phase 1: fill memory. Once the input reports exhaustion it must
	// not see another Next (scan operators treat that as a contract
	// violation), so the overflow probe runs only on a full buffer.
	buf := make([]Row, 0, 1024)
	overflowRow, overflowed := Row(nil), false
	exhausted := false
	for int64(len(buf)) < maxRows {
		row, ok := s.input.Next()
		if !ok {
			exhausted = true
			break
		}
		buf = append(buf, copyRow(row))
	}
	if !exhausted {
		if r, ok := s.input.Next(); ok {
			overflowRow, overflowed = copyRow(r), true
		}
	}
	if !overflowed {
		s.sortRows(buf)
		s.memRows = buf
		return
	}

	var runs []spillRun
	if s.policy == PolicyGraceful {
		// Graceful degradation: the memory-resident prefix stays in memory
		// as run zero; only the overflow is spilled, in small chunks, so
		// the spill cost is proportional to the overflow — continuous at
		// the memory boundary.
		s.sortRows(buf)
		chunkSize := maxRows / 16
		if chunkSize < 1 {
			chunkSize = 1
		}
		chunk := []Row{overflowRow}
		for {
			row, ok := s.input.Next()
			if !ok {
				break
			}
			chunk = append(chunk, copyRow(row))
			if int64(len(chunk)) >= chunkSize {
				runs = append(runs, spill(chunk))
				chunk = chunk[:0]
			}
		}
		if len(chunk) > 0 {
			runs = append(runs, spill(chunk))
		}
		s.merger = newRunMerger(s.ctx, s, runs, buf)
		return
	}

	// Degenerate policy: one row over budget spills the entire input —
	// including the prefix that fit — producing the cost discontinuity
	// the paper's §4 predicts for sorts lacking graceful degradation.
	runs = append(runs, spill(buf))
	buf = []Row{overflowRow}
	for {
		row, ok := s.input.Next()
		if !ok {
			break
		}
		buf = append(buf, copyRow(row))
		if int64(len(buf)) >= maxRows {
			runs = append(runs, spill(buf))
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		runs = append(runs, spill(buf))
	}
	s.merger = newRunMerger(s.ctx, s, runs, nil)
}

// Next returns rows in ascending key order.
func (s *Sort) Next() (Row, bool) {
	if !s.built {
		s.build()
	}
	if s.merger != nil {
		return s.merger.next()
	}
	if s.memPos >= len(s.memRows) {
		return nil, false
	}
	r := s.memRows[s.memPos]
	s.memPos++
	s.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return r, true
}

// Close closes the input and drops spill files.
func (s *Sort) Close() {
	s.input.Close()
	if s.merger != nil {
		s.merger.drop()
	}
}

// runMerger is a k-way merge over spilled runs plus an optional in-memory
// run, using a loser-tree-equivalent binary heap.
type runMerger struct {
	ctx  *Ctx
	sort *Sort
	runs []spillRun
	h    mergeHeap
}

type mergeSource struct {
	reader *runReader // nil for the in-memory run
	mem    []Row
	pos    int
	cur    Row
}

func (src *mergeSource) advance() bool {
	if src.reader != nil {
		row, ok := src.reader.next()
		if !ok {
			return false
		}
		// Copy: the reader reuses its buffer.
		out := make(Row, len(row))
		copy(out, row)
		src.cur = out
		return true
	}
	if src.pos >= len(src.mem) {
		return false
	}
	src.cur = src.mem[src.pos]
	src.pos++
	return true
}

type mergeHeap struct {
	sources []*mergeSource
	cmp     func(a, b Row) int
}

func (h mergeHeap) Len() int           { return len(h.sources) }
func (h mergeHeap) Less(i, j int) bool { return h.cmp(h.sources[i].cur, h.sources[j].cur) < 0 }
func (h mergeHeap) Swap(i, j int)      { h.sources[i], h.sources[j] = h.sources[j], h.sources[i] }
func (h *mergeHeap) Push(x any)        { h.sources = append(h.sources, x.(*mergeSource)) }
func (h *mergeHeap) Pop() any {
	old := h.sources
	n := len(old)
	x := old[n-1]
	h.sources = old[:n-1]
	return x
}

func newRunMerger(ctx *Ctx, s *Sort, runs []spillRun, memRun []Row) *runMerger {
	m := &runMerger{ctx: ctx, sort: s, runs: runs}
	m.h.cmp = s.compare
	for _, run := range runs {
		src := &mergeSource{reader: newRunReader(ctx, run)}
		if src.advance() {
			m.h.sources = append(m.h.sources, src)
		}
	}
	if len(memRun) > 0 {
		src := &mergeSource{mem: memRun}
		if src.advance() {
			m.h.sources = append(m.h.sources, src)
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *runMerger) next() (Row, bool) {
	if m.h.Len() == 0 {
		return nil, false
	}
	src := m.h.sources[0]
	row := src.cur
	if src.advance() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	m.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return row, true
}

func (m *runMerger) drop() {
	for _, run := range m.runs {
		run.drop(m.ctx)
	}
	m.runs = nil
}
