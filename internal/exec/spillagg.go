package exec

import (
	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// SpillingHashAggregate is HashAggregate with graceful memory degradation:
// when the group state exceeds the memory budget, the input is partitioned
// by group-key hash into spill files and each partition is aggregated
// independently (partitions are disjoint in group keys, so results simply
// concatenate). This is the aggregation analogue of the grace hash join —
// the §4 aggregation-robustness experiment maps it against the unbounded
// in-memory variant.
type SpillingHashAggregate struct {
	ctx     *Ctx
	input   RowIter
	schema  *record.Schema
	groupBy []int
	aggs    []AggSpec

	results []Row
	pos     int
	built   bool
	// Spilled reports whether any partitioning happened (for tests).
	Spilled bool
}

// spillAggFanOut is the partition fan-out per level.
const spillAggFanOut = 8

// groupStateBytes approximates the memory footprint of one group's state.
func groupStateBytes(groupBy []int, aggs []AggSpec) int64 {
	return int64(32 + 16*len(groupBy) + 40*len(aggs))
}

// NewSpillingHashAggregate constructs the memory-adaptive aggregate.
// schema describes the input rows (needed to spill them).
func NewSpillingHashAggregate(ctx *Ctx, input RowIter, schema *record.Schema,
	groupBy []int, aggs []AggSpec) *SpillingHashAggregate {
	return &SpillingHashAggregate{ctx: ctx, input: input, schema: schema,
		groupBy: groupBy, aggs: aggs}
}

// Open opens the input.
func (a *SpillingHashAggregate) Open() { a.input.Open() }

func (a *SpillingHashAggregate) build() {
	rows := gatherRows(a.input)
	a.aggregate(rows, 0)
	a.built = true
}

// aggregate processes one partition, recursing with spill partitioning
// when the distinct-group state would exceed the budget.
func (a *SpillingHashAggregate) aggregate(rows []Row, level int) {
	maxGroups := a.ctx.Budget() / groupStateBytes(a.groupBy, a.aggs)
	if maxGroups < 1 {
		maxGroups = 1
	}

	groups := make(map[string]*aggState)
	var order []string
	overflowAt := -1
	for i, row := range rows {
		a.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		key := keyString(row, a.groupBy)
		st := groups[key]
		if st == nil {
			if int64(len(groups)) >= maxGroups && level < 4 {
				overflowAt = i
				break
			}
			st = newAggState(row, a.groupBy, a.aggs)
			groups[key] = st
			order = append(order, key)
		}
		accumulateInto(st, row, a.aggs)
	}

	if overflowAt < 0 {
		sortStrings(order)
		for _, key := range order {
			a.results = append(a.results, renderAggRow(groups[key], a.aggs))
		}
		return
	}

	// Overflow: spill ALL rows (including the prefix — their groups may
	// receive more input later) into disjoint partitions by key hash and
	// recurse. The round trip is charged through the run writers/readers.
	a.Spilled = true
	writers := make([]*runWriter, spillAggFanOut)
	for i := range writers {
		writers[i] = newRunWriter(a.ctx, a.schema)
	}
	for _, row := range rows {
		a.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		p := fnv64([]byte(keyString(row, a.groupBy))) ^ uint64(level)*0x9E3779B97F4A7C15
		writers[p%spillAggFanOut].write(row)
	}
	for _, w := range writers {
		run := w.finish()
		r := newRunReader(a.ctx, run)
		var part []Row
		for {
			row, ok := r.next()
			if !ok {
				break
			}
			part = append(part, copyRowVals(row))
		}
		run.drop(a.ctx)
		a.aggregate(part, level+1)
	}
}

func newAggState(row Row, groupBy []int, aggs []AggSpec) *aggState {
	st := &aggState{
		counts: make([]int64, len(aggs)),
		sums:   make([]float64, len(aggs)),
		mins:   make([]record.Value, len(aggs)),
		maxs:   make([]record.Value, len(aggs)),
	}
	for _, g := range groupBy {
		st.groupVals = append(st.groupVals, row[g])
	}
	return st
}

func accumulateInto(st *aggState, row Row, aggs []AggSpec) {
	for i, spec := range aggs {
		st.counts[i]++
		switch spec.Kind {
		case AggSum:
			st.sums[i] += row[spec.Col].AsFloat()
		case AggMin:
			if st.mins[i].IsNull() || record.Compare(row[spec.Col], st.mins[i]) < 0 {
				st.mins[i] = row[spec.Col]
			}
		case AggMax:
			if st.maxs[i].IsNull() || record.Compare(row[spec.Col], st.maxs[i]) > 0 {
				st.maxs[i] = row[spec.Col]
			}
		}
	}
}

func renderAggRow(st *aggState, aggs []AggSpec) Row {
	out := append(Row{}, st.groupVals...)
	for i, spec := range aggs {
		switch spec.Kind {
		case AggCount:
			out = append(out, record.Int(st.counts[i]))
		case AggSum:
			out = append(out, record.Float(st.sums[i]))
		case AggMin:
			out = append(out, st.mins[i])
		case AggMax:
			out = append(out, st.maxs[i])
		}
	}
	return out
}

// Next returns the next group row. Output order is deterministic within
// each partition (normalized key order) but partitions concatenate in
// hash order when spilling occurred.
func (a *SpillingHashAggregate) Next() (Row, bool) {
	if !a.built {
		a.build()
	}
	if a.pos >= len(a.results) {
		return nil, false
	}
	r := a.results[a.pos]
	a.pos++
	a.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return r, true
}

// Close closes the input.
func (a *SpillingHashAggregate) Close() { a.input.Close() }
