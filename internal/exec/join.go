package exec

import (
	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// General equality joins over row streams. The paper's selection study
// needs only the RID intersection joins (ridjoin.go); these row joins back
// the sort-vs-hash ablation ([GLS94] is cited in the paper's Figure 5
// discussion) and the join examples.

// MergeJoinRows joins two inputs already sorted on their join keys,
// emitting concatenated rows. Duplicate keys on both sides produce the
// cross product (buffered per key group).
type MergeJoinRows struct {
	ctx         *Ctx
	left, right RowIter
	leftKeys    []int
	rightKeys   []int

	lRow    Row
	lOK     bool
	rRow    Row
	rOK     bool
	started bool

	group    []Row // buffered right rows for the current key
	groupKey Row
	gi       int
	out      Row
}

// NewMergeJoinRows constructs a merge join; inputs must be sorted on the
// given key ordinals (wrap them in Sort if not).
func NewMergeJoinRows(ctx *Ctx, left, right RowIter, leftKeys, rightKeys []int) *MergeJoinRows {
	if len(leftKeys) != len(rightKeys) {
		panic("exec: merge join key arity mismatch")
	}
	return &MergeJoinRows{ctx: ctx, left: left, right: right, leftKeys: leftKeys, rightKeys: rightKeys}
}

// Open opens both inputs.
func (j *MergeJoinRows) Open() {
	j.left.Open()
	j.right.Open()
}

func (j *MergeJoinRows) compareKeys(l, r Row) int {
	j.ctx.ChargeCPU(simclock.AccountCompare, CostSortCompare, 1)
	for i := range j.leftKeys {
		if c := record.Compare(l[j.leftKeys[i]], r[j.rightKeys[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// compareRightKeys compares two right-side rows — both indexed with the
// right key ordinals, which need not match the left ordinals.
func (j *MergeJoinRows) compareRightKeys(a, b Row) int {
	j.ctx.ChargeCPU(simclock.AccountCompare, CostSortCompare, 1)
	for _, k := range j.rightKeys {
		if c := record.Compare(a[k], b[k]); c != 0 {
			return c
		}
	}
	return 0
}

func copyRowVals(r Row) Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

func (j *MergeJoinRows) advanceLeft() {
	row, ok := j.left.Next()
	if ok {
		j.lRow, j.lOK = copyRowVals(row), true
	} else {
		j.lOK = false
	}
}

func (j *MergeJoinRows) advanceRight() {
	row, ok := j.right.Next()
	if ok {
		j.rRow, j.rOK = copyRowVals(row), true
	} else {
		j.rOK = false
	}
}

// Next returns the next joined row (left columns then right columns).
func (j *MergeJoinRows) Next() (Row, bool) {
	if !j.started {
		j.advanceLeft()
		j.advanceRight()
		j.started = true
	}
	for {
		// Emit from the buffered group.
		if j.gi < len(j.group) {
			r := j.group[j.gi]
			j.gi++
			j.out = j.out[:0]
			j.out = append(j.out, j.lRow...)
			j.out = append(j.out, r...)
			j.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
			return j.out, true
		}
		// Group exhausted for this left row: does the next left row share
		// the key?
		if len(j.group) > 0 {
			j.advanceLeft()
			if j.lOK && j.compareKeys(j.lRow, j.groupKey) == 0 {
				j.gi = 0
				continue
			}
			j.group = j.group[:0]
			j.gi = 0
		}
		if !j.lOK || !j.rOK {
			return nil, false
		}
		switch c := j.compareKeys(j.lRow, j.rRow); {
		case c < 0:
			j.advanceLeft()
		case c > 0:
			j.advanceRight()
		default:
			// Buffer all right rows with this key.
			j.groupKey = copyRowVals(j.rRow)
			j.group = append(j.group[:0], copyRowVals(j.rRow))
			for {
				j.advanceRight()
				if !j.rOK || j.compareRightKeys(j.groupKey, j.rRow) != 0 {
					break
				}
				j.group = append(j.group, copyRowVals(j.rRow))
			}
			j.gi = 0
		}
	}
}

// Close closes both inputs.
func (j *MergeJoinRows) Close() {
	j.left.Close()
	j.right.Close()
}

// HashJoinRows is a grace hash join: if the build input exceeds the memory
// budget, both inputs are partitioned to spill files by key hash and each
// partition pair is joined recursively. This is the memory-adaptive
// behaviour whose robustness the hash-join ablation maps.
type HashJoinRows struct {
	ctx          *Ctx
	build, probe RowIter
	buildSchema  *record.Schema
	probeSchema  *record.Schema
	buildKeys    []int
	probeKeys    []int

	results []Row // materialized output (simple and sufficient here)
	pos     int
	built   bool
}

// HashJoinFanOut is the number of partitions used per grace-partitioning
// level.
const HashJoinFanOut = 8

// NewHashJoinRows constructs the join; build should be the smaller input.
func NewHashJoinRows(ctx *Ctx, build, probe RowIter, buildSchema, probeSchema *record.Schema,
	buildKeys, probeKeys []int) *HashJoinRows {
	if len(buildKeys) != len(probeKeys) {
		panic("exec: hash join key arity mismatch")
	}
	return &HashJoinRows{ctx: ctx, build: build, probe: probe,
		buildSchema: buildSchema, probeSchema: probeSchema,
		buildKeys: buildKeys, probeKeys: probeKeys}
}

// Open opens both inputs.
func (j *HashJoinRows) Open() {
	j.build.Open()
	j.probe.Open()
}

// hashKey computes a key hash for partitioning and table lookup.
func (j *HashJoinRows) hashKey(row Row, keys []int, level int) uint64 {
	j.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
	h := uint64(14695981039346656037) ^ uint64(level)*1099511628211
	for _, k := range keys {
		h = h*1099511628211 + valueHash(row[k])
	}
	return h
}

func valueHash(v record.Value) uint64 {
	if v.IsNull() {
		return 0
	}
	switch v.Type() {
	case record.TypeInt64, record.TypeDate:
		return uint64(v.AsInt()) * 0x9E3779B97F4A7C15
	case record.TypeFloat64:
		return record.Float64ToSortable(v.AsFloat()) * 0x9E3779B97F4A7C15
	case record.TypeString:
		return fnv64([]byte(v.AsString()))
	case record.TypeBytes:
		return fnv64(v.AsBytes())
	case record.TypeBool:
		if v.AsBool() {
			return 0x9E3779B97F4A7C15
		}
		return 0x517CC1B727220A95
	default:
		return 0
	}
}

func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

func keyString(row Row, keys []int) string {
	var buf []byte
	for _, k := range keys {
		buf = record.NormalizeValue(buf, row[k])
	}
	return string(buf)
}

func (j *HashJoinRows) run() {
	buildRows := gatherRows(j.build)
	probeRows := gatherRows(j.probe)
	j.joinPartition(buildRows, probeRows, 0)
	j.built = true
}

func gatherRows(it RowIter) []Row {
	var out []Row
	for {
		row, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, copyRowVals(row))
	}
}

// joinPartition joins one partition, recursing with grace partitioning when
// the build side exceeds memory.
func (j *HashJoinRows) joinPartition(build, probe []Row, level int) {
	if len(probe) == 0 || len(build) == 0 {
		return
	}
	buildBytes := int64(len(build)) * int64(j.buildSchema.EncodedSizeEstimate())
	if buildBytes > j.ctx.Budget() && level < 4 {
		// Grace partitioning: spill both sides into fan-out partitions.
		// The spill cost is charged through run writers/readers.
		buildParts := j.partition(build, j.buildSchema, j.buildKeys, level)
		probeParts := j.partition(probe, j.probeSchema, j.probeKeys, level)
		for p := 0; p < HashJoinFanOut; p++ {
			j.joinPartition(buildParts[p], probeParts[p], level+1)
		}
		return
	}
	// In-memory build and probe.
	table := make(map[string][]Row, len(build))
	for _, row := range build {
		j.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		k := keyString(row, j.buildKeys)
		table[k] = append(table[k], row)
	}
	for _, row := range probe {
		j.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		for _, b := range table[keyString(row, j.probeKeys)] {
			out := make(Row, 0, len(b)+len(row))
			out = append(out, b...)
			out = append(out, row...)
			j.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
			j.results = append(j.results, out)
		}
	}
}

// partition spills rows into fan-out runs by key hash and reads them back,
// charging the full write+read round trip that grace partitioning pays.
func (j *HashJoinRows) partition(rows []Row, schema *record.Schema, keys []int, level int) [][]Row {
	writers := make([]*runWriter, HashJoinFanOut)
	for i := range writers {
		writers[i] = newRunWriter(j.ctx, schema)
	}
	for _, row := range rows {
		p := j.hashKey(row, keys, level) % HashJoinFanOut
		writers[p].write(row)
	}
	out := make([][]Row, HashJoinFanOut)
	for i, w := range writers {
		run := w.finish()
		r := newRunReader(j.ctx, run)
		for {
			row, ok := r.next()
			if !ok {
				break
			}
			out[i] = append(out[i], copyRowVals(row))
		}
		run.drop(j.ctx)
	}
	return out
}

// Next returns the next joined row (build columns then probe columns).
func (j *HashJoinRows) Next() (Row, bool) {
	if !j.built {
		j.run()
	}
	if j.pos >= len(j.results) {
		return nil, false
	}
	r := j.results[j.pos]
	j.pos++
	return r, true
}

// Close closes both inputs.
func (j *HashJoinRows) Close() {
	j.build.Close()
	j.probe.Close()
}
