package exec

import (
	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// NestedLoopJoin is the textbook quadratic equality join: for every outer
// row, the materialized inner input is scanned in full. It needs no sort,
// no hash table, and almost no memory — and its cost grows as the product
// of the input sizes, the least robust shape a join can have. The join
// robustness experiment maps it against the hash and sort-merge joins:
// unbeatable at tiny inputs, catastrophic at large ones, exactly the kind
// of crossover structure the paper's maps exist to expose.
type NestedLoopJoin struct {
	ctx          *Ctx
	outer, inner RowIter
	outerKeys    []int
	innerKeys    []int

	innerRows []Row
	built     bool
	curOuter  Row
	haveOuter bool
	pos       int
	out       Row
}

// NewNestedLoopJoin constructs the join; inner is materialized on first
// use (charged per-row), outer streams.
func NewNestedLoopJoin(ctx *Ctx, outer, inner RowIter, outerKeys, innerKeys []int) *NestedLoopJoin {
	if len(outerKeys) != len(innerKeys) {
		panic("exec: nested loop join key arity mismatch")
	}
	return &NestedLoopJoin{ctx: ctx, outer: outer, inner: inner,
		outerKeys: outerKeys, innerKeys: innerKeys}
}

// Open opens both inputs.
func (j *NestedLoopJoin) Open() {
	j.outer.Open()
	j.inner.Open()
}

func (j *NestedLoopJoin) build() {
	j.innerRows = gatherRows(j.inner)
	j.built = true
}

func (j *NestedLoopJoin) match(o, i Row) bool {
	for k := range j.outerKeys {
		j.ctx.ChargeCPU(simclock.AccountCompare, CostSortCompare, 1)
		if record.Compare(o[j.outerKeys[k]], i[j.innerKeys[k]]) != 0 {
			return false
		}
	}
	return true
}

// Next returns the next joined row (outer columns then inner columns).
func (j *NestedLoopJoin) Next() (Row, bool) {
	if !j.built {
		j.build()
	}
	for {
		if !j.haveOuter {
			row, ok := j.outer.Next()
			if !ok {
				return nil, false
			}
			j.curOuter = copyRowVals(row)
			j.haveOuter = true
			j.pos = 0
		}
		for j.pos < len(j.innerRows) {
			inner := j.innerRows[j.pos]
			j.pos++
			if j.match(j.curOuter, inner) {
				j.out = j.out[:0]
				j.out = append(j.out, j.curOuter...)
				j.out = append(j.out, inner...)
				j.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
				return j.out, true
			}
		}
		j.haveOuter = false
	}
}

// Close closes both inputs.
func (j *NestedLoopJoin) Close() {
	j.outer.Close()
	j.inner.Close()
}
