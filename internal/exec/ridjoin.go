package exec

import (
	"math/bits"

	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// RID intersection joins combine two secondary-index scans on the same
// table into the set of rows satisfying both predicates — the "multi-index
// plans that join non-clustered indexes" of Figure 2 and the two-index
// merge join of Figure 5.

// RIDMergeIntersect materializes both RID inputs, sorts each into physical
// order, and merges. Its cost is symmetric in the two inputs — the symmetry
// the paper points out in Figure 5 ("the symmetry in this diagram indicates
// that the two dimensions have very similar effects"). Output is in
// ascending RID order.
type RIDMergeIntersect struct {
	ctx         *Ctx
	left, right RIDIter
	out         []storage.RID
	pos         int
	built       bool
	driven      bool // consumed via NextRIDBatch; gather inputs in batches
}

// NewRIDMergeIntersect constructs the merge-based intersection. The two
// "join orders" of the paper are represented by swapping left and right —
// the costs are identical by construction, which is why several plans share
// optimality regions in Figure 10.
func NewRIDMergeIntersect(ctx *Ctx, left, right RIDIter) *RIDMergeIntersect {
	return &RIDMergeIntersect{ctx: ctx, left: left, right: right}
}

// Open opens both inputs.
func (j *RIDMergeIntersect) Open() {
	j.left.Open()
	j.right.Open()
}

func gatherRIDs(it RIDIter, batched bool) []storage.RID {
	if b, ok := it.(RIDBatcher); batched && ok {
		// Full drain either way: the producer's I/O order is unchanged,
		// its per-entry charges are just summed per sub-batch.
		var out []storage.RID
		for {
			rids, ok := b.NextRIDBatch(ridBatchCap)
			if !ok {
				return out
			}
			out = append(out, rids...)
		}
	}
	var out []storage.RID
	for {
		rid, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, rid)
	}
}

func (j *RIDMergeIntersect) build() {
	l := gatherRIDs(j.left, j.driven)
	r := gatherRIDs(j.right, j.driven)
	sortRIDs(j.ctx, l)
	sortRIDs(j.ctx, r)
	// Merge, charging one comparison per step.
	li, ri := 0, 0
	for li < len(l) && ri < len(r) {
		j.ctx.ChargeCPU(simclock.AccountCompare, CostRIDCompare, 1)
		switch l[li].Compare(r[ri]) {
		case -1:
			li++
		case 1:
			ri++
		default:
			j.out = append(j.out, l[li])
			li++
			ri++
		}
	}
	j.built = true
}

func sortRIDs(ctx *Ctx, rids []storage.RID) {
	n := len(rids)
	if n <= 1 {
		return
	}
	// RIDs are unique, so any comparison sort yields the same permutation.
	sortRIDsInPlace(rids, nil)
	ctx.ChargeCPU(simclock.AccountSort, CostRIDCompare, int64(n)*int64(bits.Len(uint(n))))
}

// Next returns the next common RID in physical order.
func (j *RIDMergeIntersect) Next() (storage.RID, bool) {
	if !j.built {
		j.build()
	}
	if j.pos >= len(j.out) {
		return storage.RID{}, false
	}
	rid := j.out[j.pos]
	j.pos++
	return rid, true
}

// NextRIDBatch serves the materialized intersection in slices of up to max
// RIDs. Emission charges nothing (matching Next); the intersection itself
// was charged during build.
func (j *RIDMergeIntersect) NextRIDBatch(max int) ([]storage.RID, bool) {
	if !j.built {
		j.driven = true
		j.build()
	}
	if j.pos >= len(j.out) {
		return nil, false
	}
	if max <= 0 || max > ridBatchCap {
		max = ridBatchCap
	}
	end := j.pos + max
	if end > len(j.out) {
		end = len(j.out)
	}
	out := j.out[j.pos:end]
	j.pos = end
	return out, true
}

// Close closes both inputs.
func (j *RIDMergeIntersect) Close() {
	j.left.Close()
	j.right.Close()
}

// RIDHashIntersect builds a hash set from the build input and probes it
// with the probe input. If the build set exceeds the memory budget, both
// inputs are grace-partitioned to spill files and the partitions are
// intersected pairwise.
//
// Cost is therefore asymmetric under memory pressure: a small build side
// fits in memory while a large one forces both sides through a disk round
// trip — the asymmetry the paper contrasts with Figure 5's symmetric merge
// join ("Hash join plans perform better in some cases but do not exhibit
// this symmetry"). Output order follows the probe input within each
// partition.
type RIDHashIntersect struct {
	ctx          *Ctx
	build, probe RIDIter
	out          []storage.RID
	pos          int
	built        bool
	driven       bool
}

// ridHashFanOut is the grace-partitioning fan-out.
const ridHashFanOut = 8

// NewRIDHashIntersect constructs the hash-based intersection; build should
// be the smaller input for the cheaper plan, but both orders are legal
// plans (the paper runs both).
func NewRIDHashIntersect(ctx *Ctx, build, probe RIDIter) *RIDHashIntersect {
	return &RIDHashIntersect{ctx: ctx, build: build, probe: probe}
}

// Open opens both inputs.
func (j *RIDHashIntersect) Open() {
	j.build.Open()
	j.probe.Open()
}

func (j *RIDHashIntersect) run() {
	b := gatherRIDs(j.build, j.driven)
	p := gatherRIDs(j.probe, j.driven)
	j.intersect(b, p, 0)
	j.built = true
}

func (j *RIDHashIntersect) intersect(build, probe []storage.RID, level int) {
	if len(build) == 0 || len(probe) == 0 {
		return
	}
	if int64(len(build))*RIDMemBytes > j.ctx.Budget() && level < 4 {
		// Grace partitioning: both sides spill to disk and come back.
		bParts := j.partitionRIDs(build, level)
		pParts := j.partitionRIDs(probe, level)
		for i := 0; i < ridHashFanOut; i++ {
			j.intersect(bParts[i], pParts[i], level+1)
		}
		return
	}
	set := make(map[storage.RID]struct{}, len(build))
	for _, rid := range build {
		j.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		set[rid] = struct{}{}
	}
	for _, rid := range probe {
		j.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		if _, hit := set[rid]; hit {
			j.out = append(j.out, rid)
		}
	}
}

// partitionRIDs spills RIDs into fan-out partition files and reads them
// back, charging the sequential write+read round trip grace partitioning
// pays. 512 RIDs fit one 8 KiB page.
func (j *RIDHashIntersect) partitionRIDs(rids []storage.RID, level int) [][]storage.RID {
	const ridsPerPage = storage.PageSize / RIDMemBytes
	out := make([][]storage.RID, ridHashFanOut)
	disk := j.ctx.Pool.Disk()
	dev := j.ctx.Pool.Device()
	files := make([]storage.FileID, ridHashFanOut)
	for i := range files {
		files[i] = disk.CreateFile()
	}
	for _, rid := range rids {
		j.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		p := int(ridHash(rid, level) % ridHashFanOut)
		out[p] = append(out[p], rid)
	}
	// Charge the spill traffic: each partition is written and read back
	// sequentially in whole pages.
	for i, part := range out {
		pages := (len(part) + ridsPerPage - 1) / ridsPerPage
		for pg := 0; pg < pages; pg++ {
			disk.AllocPage(files[i])
			dev.WritePage(uint32(files[i]), int64(pg))
		}
		for pg := 0; pg < pages; pg++ {
			dev.ReadPage(uint32(files[i]), int64(pg))
		}
		disk.DropFile(files[i])
	}
	return out
}

func ridHash(rid storage.RID, level int) uint64 {
	h := uint64(rid.File)*0x9E3779B97F4A7C15 ^ uint64(rid.Page)*1099511628211 ^ uint64(rid.Slot)
	h ^= uint64(level) * 0x517CC1B727220A95
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// Next returns the next intersecting RID.
func (j *RIDHashIntersect) Next() (storage.RID, bool) {
	if !j.built {
		j.run()
	}
	if j.pos >= len(j.out) {
		return storage.RID{}, false
	}
	rid := j.out[j.pos]
	j.pos++
	return rid, true
}

// NextRIDBatch serves the materialized intersection in slices of up to max
// RIDs.
func (j *RIDHashIntersect) NextRIDBatch(max int) ([]storage.RID, bool) {
	if !j.built {
		j.driven = true
		j.run()
	}
	if j.pos >= len(j.out) {
		return nil, false
	}
	if max <= 0 || max > ridBatchCap {
		max = ridBatchCap
	}
	end := j.pos + max
	if end > len(j.out) {
		end = len(j.out)
	}
	out := j.out[j.pos:end]
	j.pos = end
	return out, true
}

// Close closes both inputs.
func (j *RIDHashIntersect) Close() {
	j.build.Close()
	j.probe.Close()
}
