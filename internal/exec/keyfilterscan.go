package exec

import (
	"time"

	"robustmap/internal/btree"
	"robustmap/internal/catalog"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// IndexKeyFilterScan walks an index range and applies predicates to the
// decoded key columns, emitting the RIDs of matching entries. Unlike
// CoveringIndexScan it does not require the index to be covering: it is the
// System B access path, where a two-column index can evaluate both
// predicates from its entries but the matching rows must still be fetched
// from the base table because only base rows carry MVCC visibility
// (Figure 8).
type IndexKeyFilterScan struct {
	ctx   *Ctx
	ix    *catalog.Index
	lo    []byte
	hi    []byte
	types []record.Type
	preds []ColPred // ordinals refer to the index's column list
	cur   *btree.Cursor

	ridBuf  []storage.RID
	scratch Row
}

// NewIndexKeyFilterScan constructs the filtering index scan.
func NewIndexKeyFilterScan(ctx *Ctx, ix *catalog.Index, lo, hi []byte, preds []ColPred) *IndexKeyFilterScan {
	types := make([]record.Type, len(ix.Columns))
	for i, o := range ix.Ordinals {
		types[i] = ix.Table.Schema.Column(o).Type
	}
	return &IndexKeyFilterScan{ctx: ctx, ix: ix, lo: lo, hi: hi, types: types, preds: preds}
}

// Open seeks to the range start.
func (s *IndexKeyFilterScan) Open() { s.cur = s.ix.Tree.Seek(s.lo, s.hi) }

// Next returns the RID of the next entry whose key columns match.
func (s *IndexKeyFilterScan) Next() (rid storage.RID, ok bool) {
	for s.cur.Next() {
		s.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, 1)
		key := s.cur.Key()
		if len(s.preds) > 0 {
			vals, err := record.Denormalize(key[:len(key)-catalog.RIDSuffixLen], s.types)
			if err != nil {
				panic("exec: corrupt index key: " + err.Error())
			}
			if !MatchesAll(s.ctx, s.preds, vals) {
				continue
			}
		}
		return catalog.DecodeRIDSuffix(key), true
	}
	return storage.RID{}, false
}

// NextRIDBatch returns up to max matching RIDs, summing the per-entry and
// predicate CPU charges (with exact short-circuit counts) per batch and
// reusing one scratch row for key decoding.
func (s *IndexKeyFilterScan) NextRIDBatch(max int) ([]storage.RID, bool) {
	if max <= 0 || max > ridBatchCap {
		max = ridBatchCap
	}
	buf := s.ridBuf[:0]
	var cpu time.Duration
	for len(buf) < max && s.cur.Next() {
		cpu += CostIndexEntry
		key := s.cur.Key()
		if len(s.preds) > 0 {
			vals, err := record.DenormalizeAppend(s.scratch[:0], key[:len(key)-catalog.RIDSuffixLen], s.types)
			if err != nil {
				panic("exec: corrupt index key: " + err.Error())
			}
			s.scratch = vals
			if !matchesAllTally(s.preds, vals, &cpu) {
				continue
			}
		}
		buf = append(buf, catalog.DecodeRIDSuffix(key))
	}
	s.ridBuf = buf
	s.ctx.chargeDur(simclock.AccountCPU, cpu)
	if len(buf) == 0 {
		return nil, false
	}
	return buf, true
}

// Close releases the cursor.
func (s *IndexKeyFilterScan) Close() { s.cur = nil }
