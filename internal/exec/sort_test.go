package exec

import (
	"math/rand"
	"testing"

	"robustmap/internal/record"
)

func sortInput(n int, seed int64) (*SliceRows, *record.Schema) {
	sch := record.NewSchema(
		record.Column{Name: "k", Type: record.TypeInt64},
		record.Column{Name: "v", Type: record.TypeString},
	)
	r := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{record.Int(int64(r.Intn(n * 2))), record.String_("payload-string")}
	}
	return &SliceRows{Rows: rows}, sch
}

func collectRows(it RowIter) []Row {
	it.Open()
	defer it.Close()
	var out []Row
	for {
		row, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, copyRowVals(row))
	}
}

func assertSorted(t *testing.T, rows []Row, n int) {
	t.Helper()
	if len(rows) != n {
		t.Fatalf("sorted output has %d rows, want %d", len(rows), n)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].AsInt() > rows[i][0].AsInt() {
			t.Fatalf("output not sorted at %d: %d > %d", i,
				rows[i-1][0].AsInt(), rows[i][0].AsInt())
		}
	}
}

func TestSortInMemory(t *testing.T) {
	e := newTestEnv(t, 101)
	in, sch := sortInput(1000, 1)
	s := NewSort(e.ctx, in, sch, []int{0}, PolicyGraceful)
	assertSorted(t, collectRows(s), 1000)
}

func TestSortEmptyInput(t *testing.T) {
	e := newTestEnv(t, 101)
	in, sch := sortInput(0, 1)
	for _, pol := range []SpillPolicy{PolicyGraceful, PolicyDegenerate} {
		s := NewSort(e.ctx, in, sch, []int{0}, pol)
		if got := collectRows(s); len(got) != 0 {
			t.Errorf("%v: empty sort yielded %d rows", pol, len(got))
		}
	}
}

func TestSortSpillingBothPoliciesCorrect(t *testing.T) {
	e := newTestEnv(t, 101)
	const n = 5000
	_, sch := sortInput(0, 1)
	rowBytes := sch.EncodedSizeEstimate()
	e.ctx.MemoryBudget = int64(rowBytes * 500) // memory for 500 of 5000 rows
	for _, pol := range []SpillPolicy{PolicyGraceful, PolicyDegenerate} {
		in, _ := sortInput(n, 7)
		s := NewSort(e.ctx, in, sch, []int{0}, pol)
		assertSorted(t, collectRows(s), n)
	}
}

func TestSortDuplicateKeysStable(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := record.NewSchema(
		record.Column{Name: "k", Type: record.TypeInt64},
		record.Column{Name: "seq", Type: record.TypeInt64},
	)
	var rows []Row
	for i := int64(0); i < 300; i++ {
		rows = append(rows, Row{record.Int(i % 3), record.Int(i)})
	}
	s := NewSort(e.ctx, &SliceRows{Rows: rows}, sch, []int{0}, PolicyGraceful)
	out := collectRows(s)
	// Within each key group, the original sequence order must be preserved.
	var lastSeq = map[int64]int64{}
	for _, r := range out {
		k, seq := r[0].AsInt(), r[1].AsInt()
		if prev, ok := lastSeq[k]; ok && seq < prev {
			t.Fatalf("stability violated for key %d: %d after %d", k, seq, prev)
		}
		lastSeq[k] = seq
	}
}

func wideSortInput(n int, seed int64) (*SliceRows, *record.Schema) {
	sch := record.NewSchema(
		record.Column{Name: "k", Type: record.TypeInt64},
		record.Column{Name: "v", Type: record.TypeString},
	)
	pad := string(make([]byte, 200))
	r := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{record.Int(int64(r.Intn(n * 2))), record.String_(pad)}
	}
	return &SliceRows{Rows: rows}, sch
}

func TestSortSpillDiscontinuity(t *testing.T) {
	// The §4 experiment: one row over the memory budget makes the
	// degenerate policy spill the ENTIRE input, so its cost jump at the
	// boundary is proportional to the input size; the graceful policy
	// spills only the overflow, so its jump is a small constant (one run
	// write+read). The paper: sorts "lacking graceful degradation will
	// show discontinuous execution costs".
	e := newTestEnv(t, 101)
	_, sch := wideSortInput(0, 1)
	const memRows = 20000
	e.ctx.MemoryBudget = int64(sch.EncodedSizeEstimate()) * memRows

	cost := func(n int, pol SpillPolicy) int64 {
		in, _ := wideSortInput(n, 3)
		e.ctx.Clock.Reset()
		Drain(NewSort(e.ctx, in, sch, []int{0}, pol))
		return int64(e.ctx.Clock.Now())
	}

	below, above := memRows-10, memRows+10
	gBelow, gAbove := cost(below, PolicyGraceful), cost(above, PolicyGraceful)
	dBelow, dAbove := cost(below, PolicyDegenerate), cost(above, PolicyDegenerate)

	jumpG := gAbove - gBelow
	jumpD := dAbove - dBelow
	if jumpD < 5*jumpG {
		t.Errorf("degenerate jump %d not >= 5x graceful jump %d", jumpD, jumpG)
	}
	if ratio := float64(dAbove) / float64(dBelow); ratio < 2.0 {
		t.Errorf("degenerate policy jumps only %.2fx at boundary, want >= 2.0", ratio)
	}
	if ratio := float64(gAbove) / float64(gBelow); ratio > 2.0 {
		t.Errorf("graceful policy jumps %.2fx at boundary, want <= 2.0", ratio)
	}
}

func TestSortSpillCostMonotoneGraceful(t *testing.T) {
	e := newTestEnv(t, 101)
	_, sch := sortInput(0, 1)
	e.ctx.MemoryBudget = int64(sch.EncodedSizeEstimate() * 1000)
	var prev int64
	for _, n := range []int{500, 1000, 1500, 2500, 4000} {
		in, _ := sortInput(n, 5)
		e.ctx.Clock.Reset()
		Drain(NewSort(e.ctx, in, sch, []int{0}, PolicyGraceful))
		cur := int64(e.ctx.Clock.Now())
		if cur < prev {
			t.Errorf("graceful sort cost not monotone: %d rows cost %d < previous %d", n, cur, prev)
		}
		prev = cur
	}
}

func TestSortMultiKeyOrdering(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := record.NewSchema(
		record.Column{Name: "k1", Type: record.TypeInt64},
		record.Column{Name: "k2", Type: record.TypeInt64},
	)
	var rows []Row
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		rows = append(rows, Row{record.Int(int64(r.Intn(5))), record.Int(int64(r.Intn(100)))})
	}
	s := NewSort(e.ctx, &SliceRows{Rows: rows}, sch, []int{0, 1}, PolicyGraceful)
	out := collectRows(s)
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a[0].AsInt() > b[0].AsInt() ||
			(a[0].AsInt() == b[0].AsInt() && a[1].AsInt() > b[1].AsInt()) {
			t.Fatalf("multi-key order violated at %d", i)
		}
	}
}
