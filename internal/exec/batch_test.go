package exec

import (
	"testing"

	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// stubBatcher serves pre-built row groups as batches (and, via Next, as
// rows), standing in for a native batched producer in edge-case tests.
type stubBatcher struct {
	groups [][]Row
	gi     int
	b      *Batch

	flat []Row
	pos  int
}

func newStubBatcher(groups [][]Row) *stubBatcher {
	s := &stubBatcher{groups: groups}
	for _, g := range groups {
		s.flat = append(s.flat, g...)
	}
	return s
}

func (s *stubBatcher) Open()  {}
func (s *stubBatcher) Close() { putBatch(s.b); s.b = nil }

func (s *stubBatcher) Next() (Row, bool) {
	if s.pos >= len(s.flat) {
		return nil, false
	}
	r := s.flat[s.pos]
	s.pos++
	return r, true
}

func (s *stubBatcher) NextBatch() (*Batch, bool) {
	if s.gi >= len(s.groups) {
		return nil, false
	}
	g := s.groups[s.gi]
	s.gi++
	if s.b == nil {
		s.b = getBatch()
	}
	s.b.reset()
	for _, r := range g {
		buf := append(s.b.rowBuf(), r...)
		s.b.commit(buf)
	}
	return s.b, true
}

// batchOnly hides a stub's row interface so AsRowIter must interpose the
// batch→row adapter.
type batchOnly struct {
	inner *stubBatcher
}

func (b *batchOnly) Open()                     { b.inner.Open() }
func (b *batchOnly) NextBatch() (*Batch, bool) { return b.inner.NextBatch() }
func (b *batchOnly) Close()                    { b.inner.Close() }

func intRows(vals ...int64) []Row {
	rows := make([]Row, len(vals))
	for i, v := range vals {
		rows[i] = Row{record.Int(v)}
	}
	return rows
}

func stubCtx() *Ctx {
	return &Ctx{Clock: simclock.New(), MemoryBudget: 1 << 30}
}

func drainBatched(t *testing.T, op BatchOperator) []int64 {
	t.Helper()
	op.Open()
	defer op.Close()
	var out []int64
	for {
		b, ok := op.NextBatch()
		if !ok {
			return out
		}
		if b.Len() == 0 {
			t.Fatal("operator emitted an empty batch, violating the NextBatch contract")
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i)[0].AsInt())
		}
	}
}

// TestFilterSkipsFullyEliminatedBatches drives a Filter whose middle
// input batch fails the predicate entirely: the filter must keep pulling
// rather than emit an empty batch or report premature exhaustion.
func TestFilterSkipsFullyEliminatedBatches(t *testing.T) {
	src := newStubBatcher([][]Row{
		intRows(1, 2, 99),
		intRows(80, 90, 95), // eliminated wholesale
		intRows(3, 97, 4),
	})
	f := NewFilter(stubCtx(), src, []ColPred{{Col: 0, Hi: record.Int(50)}})
	got := drainBatched(t, f)
	want := []int64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v rows %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestFilterAllEliminated covers the everything-filtered case: NextBatch
// must return false, not loop or emit empties.
func TestFilterAllEliminated(t *testing.T) {
	src := newStubBatcher([][]Row{intRows(60, 70), intRows(80)})
	f := NewFilter(stubCtx(), src, []ColPred{{Col: 0, Hi: record.Int(50)}})
	if got := drainBatched(t, f); len(got) != 0 {
		t.Fatalf("got %v, want no rows", got)
	}
}

// TestLimitCutsMidBatch checks the selection-vector truncation when the
// limit lands inside a batch, and that the operator reports exhaustion
// immediately afterwards.
func TestLimitCutsMidBatch(t *testing.T) {
	src := newStubBatcher([][]Row{
		intRows(0, 1, 2, 3),
		intRows(4, 5, 6, 7),
		intRows(8, 9),
	})
	l := NewLimit(src, 6)
	got := drainBatched(t, l)
	if len(got) != 6 {
		t.Fatalf("limit 6 returned %d rows: %v", len(got), got)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d: got %d, want %d", i, v, i)
		}
	}
}

// TestLimitCutsMidSelectedBatch is the same cut through a batch that
// already carries a selection vector (filter upstream of limit).
func TestLimitCutsMidSelectedBatch(t *testing.T) {
	src := newStubBatcher([][]Row{
		intRows(0, 100, 1, 101, 2, 102),
		intRows(3, 103, 4, 104),
	})
	f := NewFilter(stubCtx(), src, []ColPred{{Col: 0, Hi: record.Int(50)}})
	l := NewLimit(f, 3)
	got := drainBatched(t, l)
	want := []int64{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestAdapterRoundTrip wraps a row-only source as a batch operator and
// back, including the zero-row case, and checks nothing is lost, added,
// or served as an empty batch.
func TestAdapterRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, BatchCapacity, BatchCapacity + 1, 2*BatchCapacity + 7} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i)
		}
		src := &SliceRows{Rows: intRows(vals...)}
		it := AsRowIter(asAdaptedBatch(t, src))
		it.Open()
		count := int64(0)
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			if r[0].AsInt() != count {
				t.Fatalf("n=%d: row %d has value %d", n, count, r[0].AsInt())
			}
			count++
		}
		it.Close()
		if count != int64(n) {
			t.Fatalf("n=%d: round trip returned %d rows", n, count)
		}
	}
}

// asAdaptedBatch forces the rowBatchAdapter path even though many
// operators are natively batch-capable.
func asAdaptedBatch(t *testing.T, it RowIter) BatchOperator {
	t.Helper()
	bo := AsBatchOperator(it)
	if _, native := it.(BatchOperator); native {
		t.Fatal("test wants a row-only source")
	}
	return bo
}

// TestSortSpillInputEndsOnBatchBoundary runs the spilling sort with an
// input whose row count is an exact multiple of BatchCapacity, delivered
// through the batch→row adapter — the boundary where an off-by-one in
// adapter exhaustion would hand Sort a phantom row or drop the last one.
func TestSortSpillInputEndsOnBatchBoundary(t *testing.T) {
	e := newTestEnv(t, 101)
	n := 2 * BatchCapacity
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 2654435761) % n) // scrambled but distinct
	}
	groups := [][]Row{
		intRows(vals[:BatchCapacity]...),
		intRows(vals[BatchCapacity:]...),
	}
	sch := record.NewSchema(record.Column{Name: "v", Type: record.TypeInt64})

	ctx := *e.ctx
	ctx.MemoryBudget = 4096 // a few pages: forces run spills
	// batchOnly is not a RowIter, so AsRowIter must interpose the adapter.
	input := AsRowIter(&batchOnly{inner: newStubBatcher(groups)})
	s := NewSort(&ctx, input, sch, []int{0}, PolicyGraceful)
	s.Open()
	defer s.Close()
	var got []int64
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, r[0].AsInt())
	}
	if len(got) != n {
		t.Fatalf("sort returned %d rows, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("position %d: got %d, want %d", i, got[i], i)
		}
	}
}

// TestAdaptersAroundJoins feeds both sides of the row-only joins through
// batch→row adapters and drains the join through the row→batch adapter,
// checking the sandwich returns exactly the rows of a direct row run.
func TestAdaptersAroundJoins(t *testing.T) {
	left := intRows(1, 2, 3, 5, 8)
	right := intRows(2, 3, 5, 7)
	sch := record.NewSchema(record.Column{Name: "v", Type: record.TypeInt64})

	mk := func(rows []Row) RowIter {
		return AsRowIter(&batchOnly{inner: newStubBatcher([][]Row{rows})})
	}

	countBatched := func(t *testing.T, op BatchOperator) int {
		t.Helper()
		op.Open()
		defer op.Close()
		n := 0
		for {
			b, ok := op.NextBatch()
			if !ok {
				return n
			}
			n += b.Len()
		}
	}

	t.Run("merge", func(t *testing.T) {
		j := NewMergeJoinRows(stubCtx(), mk(left), mk(right), []int{0}, []int{0})
		if n := countBatched(t, AsBatchOperator(j)); n != 3 {
			t.Fatalf("merge join matched %d rows, want 3", n)
		}
	})
	t.Run("hash", func(t *testing.T) {
		j := NewHashJoinRows(stubCtx(), mk(left), mk(right), sch, sch, []int{0}, []int{0})
		if n := countBatched(t, AsBatchOperator(j)); n != 3 {
			t.Fatalf("hash join matched %d rows, want 3", n)
		}
	})
}
