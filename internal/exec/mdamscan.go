package exec

import (
	"robustmap/internal/btree"
	"robustmap/internal/catalog"
	"robustmap/internal/mdam"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// MDAMScan walks a two-column covering index with interval predicates on
// both columns — the paper's System C plan (Figure 9). The leading column's
// qualifying range is scanned; within it, entries whose second column falls
// outside its interval set are skipped, and when a long stretch of
// non-qualifying entries is detected the scan re-probes the tree past the
// current leading value instead of grinding through leaf entries
// ("multi-dimensional B-tree access", [LJBY95]).
//
// The scan-vs-probe switch is what makes the plan robust: its cost is
// bounded by the leading interval's entry count on one side and by the
// number of distinct leading values on the other, never by the table's
// row count times a random I/O.
type MDAMScan struct {
	ctx       *Ctx
	ix        *catalog.Index
	leadSet   mdam.Set
	secondSet mdam.Set
	types     []record.Type

	// ProbeThreshold is the number of consecutive non-qualifying entries
	// tolerated before re-probing. Exposed for the MDAM ablation bench.
	ProbeThreshold int

	// DisableProbes turns off all re-probing, degrading the operator to a
	// filtered covering scan — the non-MDAM baseline of the ablation.
	DisableProbes bool

	cur    *btree.Cursor
	misses int
	row    Row

	// Probes counts tree re-probes (for tests and EXPLAIN output).
	Probes int
}

// DefaultProbeThreshold balances scanning vs probing: about the number of
// entries whose decode cost equals one tree descent.
const DefaultProbeThreshold = 16

// NewMDAMScan constructs the scan over a two-column covering index.
func NewMDAMScan(ctx *Ctx, ix *catalog.Index, leadSet, secondSet mdam.Set) *MDAMScan {
	if len(ix.Columns) != 2 {
		panic("exec: MDAMScan requires a two-column index")
	}
	if !ix.Covering {
		panic("exec: MDAMScan over non-covering index " + ix.Name)
	}
	types := []record.Type{
		ix.Table.Schema.Column(ix.Ordinals[0]).Type,
		ix.Table.Schema.Column(ix.Ordinals[1]).Type,
	}
	return &MDAMScan{ctx: ctx, ix: ix, leadSet: leadSet, secondSet: secondSet,
		types: types, ProbeThreshold: DefaultProbeThreshold}
}

// Open positions the scan at the start of the leading interval set.
func (s *MDAMScan) Open() {
	if s.leadSet.Empty() || s.secondSet.Empty() {
		s.cur = nil
		return
	}
	var lo, hi []byte
	if v, ok := s.leadSet.MinLo(); ok {
		lo = record.NormalizeValue(nil, v)
	}
	if v, ok := s.leadSet.MaxHi(); ok {
		hi = record.NormalizeValue(nil, v)
	}
	s.cur = s.ix.Tree.Seek(lo, hi)
}

// Next returns the next qualifying (lead, second) row.
func (s *MDAMScan) Next() (Row, bool) {
	if s.cur == nil {
		return nil, false
	}
	for s.cur.Next() {
		s.ctx.ChargeCPU(simclock.AccountCPU, CostIndexEntry, 1)
		key := s.cur.Key()
		vals, err := record.Denormalize(key[:len(key)-catalog.RIDSuffixLen], s.types)
		if err != nil {
			panic("exec: corrupt MDAM index key: " + err.Error())
		}
		lead, second := vals[0], vals[1]

		if !s.leadSet.Contains(lead) {
			if s.DisableProbes {
				continue
			}
			// Inside the overall [minLo, maxHi) range but in a gap between
			// leading intervals: probe to the next interval's start.
			if iv, ok := s.leadSet.NextFrom(lead); ok && !iv.Lo.IsNull() {
				s.probeTo(record.NormalizeValue(nil, iv.Lo))
				continue
			}
			return nil, false
		}

		if s.secondSet.Contains(second) {
			s.misses = 0
			s.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
			s.row = vals
			return s.row, true
		}
		if s.DisableProbes {
			continue
		}

		// Non-qualifying second column. If the second value is already at
		// or past its set's upper bound, nothing further under this leading
		// value can qualify: skip to the next leading value immediately.
		if hi, bounded := s.secondSet.MaxHi(); bounded && record.Compare(second, hi) >= 0 {
			s.probeTo(record.KeySuccessor(record.NormalizeValue(nil, lead)))
			continue
		}
		// Otherwise the qualifying region may lie ahead within this
		// leading value; scan adaptively, probing directly to the next
		// second-column interval after a stretch of misses.
		s.misses++
		if s.misses >= s.ProbeThreshold {
			if iv, ok := s.secondSet.NextFrom(second); ok && !iv.Lo.IsNull() {
				target := record.NormalizeValue(nil, lead)
				target = record.NormalizeValue(target, iv.Lo)
				s.probeTo(target)
			}
		}
	}
	return nil, false
}

// probeTo re-seeks the cursor to the given key, preserving the overall
// upper bound, and counts the probe.
func (s *MDAMScan) probeTo(key []byte) {
	var hi []byte
	if v, ok := s.leadSet.MaxHi(); ok {
		hi = record.NormalizeValue(nil, v)
	}
	s.cur = s.ix.Tree.Seek(key, hi)
	s.misses = 0
	s.Probes++
}

// Close releases the cursor.
func (s *MDAMScan) Close() { s.cur = nil }
