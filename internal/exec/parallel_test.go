package exec

import (
	"testing"

	"robustmap/internal/iomodel"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

func freshWorkerCtx(e *env) func(int) *Ctx {
	return func(int) *Ctx {
		clock := simclock.New()
		dev := iomodel.NewDevice(iomodel.DefaultParams(), clock)
		pool := storage.NewPool(e.ctx.Pool.Disk(), dev, clock, 64)
		return &Ctx{Clock: clock, Pool: pool, MemoryBudget: 1 << 30}
	}
}

func TestRangedTableScanPartitionsCoverTable(t *testing.T) {
	e := newTestEnv(t, 3001)
	pages := e.tbl.Heap.NumPages()
	ranges := SkewedRanges(pages, 4, 1.0)
	var total int64
	for _, rng := range ranges {
		total += Drain(NewRangedTableScan(e.ctx, e.tbl, nil, rng))
	}
	if total != e.n {
		t.Errorf("partitioned scans saw %d rows, want %d", total, e.n)
	}
}

func TestRangedTableScanWithPredicate(t *testing.T) {
	e := newTestEnv(t, 2003)
	pages := e.tbl.Heap.NumPages()
	ranges := SkewedRanges(pages, 3, 1.0)
	var total int64
	for _, rng := range ranges {
		total += Drain(NewRangedTableScan(e.ctx, e.tbl, []ColPred{predLess(1, 500)}, rng))
	}
	if total != 500 {
		t.Errorf("partitioned predicate scans saw %d rows, want 500", total)
	}
}

func TestRangedTableScanUnalignedStartStaysSequential(t *testing.T) {
	// A fragment starting mid-extent must still be priced as a sequential
	// scan (prefetch from its first page), not page-at-a-time seeks.
	e := newTestEnv(t, 4001)
	pages := e.tbl.Heap.NumPages()
	rng := PageRange{Lo: 3, Hi: pages} // deliberately unaligned
	e.ctx.Pool.FlushAll()
	e.ctx.Clock.Reset()
	e.ctx.Pool.Device().ResetStats()
	Drain(NewRangedTableScan(e.ctx, e.tbl, nil, rng))
	st := e.ctx.Pool.Device().Stats()
	if st.RandomReads > 2 {
		t.Errorf("unaligned fragment paid %d random reads, want <= 2", st.RandomReads)
	}
}

func TestSkewedRanges(t *testing.T) {
	ranges := SkewedRanges(100, 4, 1.0)
	if len(ranges) != 4 {
		t.Fatalf("ranges = %v", ranges)
	}
	if ranges[0].Lo != 0 || ranges[3].Hi != 100 {
		t.Errorf("ranges do not cover [0,100): %v", ranges)
	}
	for i := 1; i < 4; i++ {
		if ranges[i].Lo != ranges[i-1].Hi {
			t.Errorf("gap between ranges %d and %d: %v", i-1, i, ranges)
		}
	}
	// Uniform: all shares equal.
	for _, r := range ranges {
		if r.Hi-r.Lo != 25 {
			t.Errorf("uniform range size = %d, want 25", r.Hi-r.Lo)
		}
	}
	// Skewed: first range much larger than last.
	skewed := SkewedRanges(100, 4, 2.0)
	first := skewed[0].Hi - skewed[0].Lo
	last := skewed[3].Hi - skewed[3].Lo
	if first < 3*last {
		t.Errorf("skew 2.0: first=%d last=%d, want strong imbalance", first, last)
	}
}

func TestSkewedRangesValidation(t *testing.T) {
	for i, f := range []func(){
		func() { SkewedRanges(10, 0, 1) },
		func() { SkewedRanges(10, 2, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRunParallelUniformSpeedup(t *testing.T) {
	e := newTestEnv(t, 8009)
	pages := e.tbl.Heap.NumPages()
	const workers = 4
	ranges := SkewedRanges(pages, workers, 1.0)
	res := RunParallel(workers, freshWorkerCtx(e), func(w int, ctx *Ctx) RowIter {
		return NewRangedTableScan(ctx, e.tbl, nil, ranges[w])
	})
	if res.Rows != e.n {
		t.Fatalf("parallel scan saw %d rows, want %d", res.Rows, e.n)
	}
	if sp := res.Speedup(); sp < 2.5 || sp > float64(workers)+0.1 {
		t.Errorf("uniform speedup = %.2f, want near %d", sp, workers)
	}
}

func TestRunParallelSkewDegradesSpeedup(t *testing.T) {
	e := newTestEnv(t, 8009)
	pages := e.tbl.Heap.NumPages()
	const workers = 4
	run := func(skew float64) ParallelResult {
		ranges := SkewedRanges(pages, workers, skew)
		return RunParallel(workers, freshWorkerCtx(e), func(w int, ctx *Ctx) RowIter {
			return NewRangedTableScan(ctx, e.tbl, nil, ranges[w])
		})
	}
	uniform := run(1.0)
	skewed := run(3.0)
	if skewed.Speedup() >= uniform.Speedup() {
		t.Errorf("skewed speedup %.2f not below uniform %.2f",
			skewed.Speedup(), uniform.Speedup())
	}
	// The makespan collapses toward the largest partition's cost: with
	// skew 3 the largest worker holds ~2/3 of the pages.
	if skewed.Makespan < uniform.Makespan*14/10 {
		t.Errorf("skewed makespan %v not >= 1.4x uniform %v",
			skewed.Makespan, uniform.Makespan)
	}
}

func TestRunParallelMakespanIsMaxPlusMerge(t *testing.T) {
	e := newTestEnv(t, 1009)
	pages := e.tbl.Heap.NumPages()
	ranges := SkewedRanges(pages, 2, 1.0)
	res := RunParallel(2, freshWorkerCtx(e), func(w int, ctx *Ctx) RowIter {
		return NewRangedTableScan(ctx, e.tbl, nil, ranges[w])
	})
	var maxW = res.Workers[0].Time
	if res.Workers[1].Time > maxW {
		maxW = res.Workers[1].Time
	}
	if res.Makespan <= maxW {
		t.Error("makespan must exceed the slowest worker (merge charge)")
	}
}
