package exec

import (
	"encoding/binary"
	"fmt"

	"robustmap/internal/record"
	"robustmap/internal/storage"
)

// Spill files hold sorted runs and hash-join partitions. Each run gets its
// own file so that the device's sequential-run detection prices interleaved
// merge reads correctly (each file advances its own sequential position).
// Spill I/O bypasses the buffer pool — bulk spill traffic is not cached by
// real engines either — and charges the device directly.
//
// Page format: uint16 row count, then schema-encoded rows back to back.

const spillHeader = 2

// runWriter writes encoded rows to a fresh file, sequentially.
type runWriter struct {
	ctx    *Ctx
	schema *record.Schema
	file   storage.FileID
	page   []byte
	off    int
	count  int
	pageNo storage.PageNo
	rows   int64
}

func newRunWriter(ctx *Ctx, schema *record.Schema) *runWriter {
	return &runWriter{
		ctx:    ctx,
		schema: schema,
		file:   ctx.Pool.Disk().CreateFile(),
		page:   make([]byte, 0, storage.PageSize),
		off:    spillHeader,
	}
}

// write appends one row, flushing pages as they fill.
func (w *runWriter) write(row Row) {
	enc, err := w.schema.Encode(nil, row)
	if err != nil {
		panic("exec: spill encode: " + err.Error())
	}
	if len(enc)+spillHeader > storage.PageSize {
		panic(fmt.Sprintf("exec: spilled row of %d bytes exceeds page", len(enc)))
	}
	if w.off+len(enc) > storage.PageSize {
		w.flushPage()
	}
	if cap(w.page) < storage.PageSize {
		w.page = make([]byte, 0, storage.PageSize)
	}
	w.page = w.page[:w.off+len(enc)]
	copy(w.page[w.off:], enc)
	w.off += len(enc)
	w.count++
	w.rows++
}

func (w *runWriter) flushPage() {
	if w.count == 0 {
		return
	}
	pn := w.ctx.Pool.Disk().AllocPage(w.file)
	data := w.ctx.Pool.Disk().PageData(w.file, pn)
	binary.LittleEndian.PutUint16(data[0:2], uint16(w.count))
	copy(data[spillHeader:], w.page[spillHeader:w.off])
	w.ctx.Pool.Device().WritePage(uint32(w.file), int64(pn))
	w.page = w.page[:0]
	w.off = spillHeader
	w.count = 0
	w.pageNo = pn + 1
}

// finish flushes the tail and returns a reader constructor.
func (w *runWriter) finish() spillRun {
	w.flushPage()
	return spillRun{file: w.file, pages: w.ctx.Pool.Disk().NumPages(w.file), rows: w.rows, schema: w.schema}
}

// spillRun identifies a finished run on disk.
type spillRun struct {
	file   storage.FileID
	pages  storage.PageNo
	rows   int64
	schema *record.Schema
}

// runReader streams a spilled run back in write order.
type runReader struct {
	ctx  *Ctx
	run  spillRun
	pg   storage.PageNo
	data []byte
	off  int
	left int
	row  Row
}

func newRunReader(ctx *Ctx, run spillRun) *runReader {
	return &runReader{ctx: ctx, run: run}
}

// next returns the following row, or false at end of run. The returned row
// is freshly decoded and owned by the reader until the next call.
func (r *runReader) next() (Row, bool) {
	for r.left == 0 {
		if r.pg >= r.run.pages {
			return nil, false
		}
		r.ctx.Pool.Device().ReadPage(uint32(r.run.file), int64(r.pg))
		r.data = r.ctx.Pool.Disk().PageData(r.run.file, r.pg)
		r.left = int(binary.LittleEndian.Uint16(r.data[0:2]))
		r.off = spillHeader
		r.pg++
	}
	r.row = r.row[:0]
	var n int
	var err error
	r.row, n, err = r.run.schema.Decode(r.data[r.off:], r.row)
	if err != nil {
		panic("exec: spill decode: " + err.Error())
	}
	r.off += n
	r.left--
	return r.row, true
}

// drop releases the run's disk space.
func (run spillRun) drop(ctx *Ctx) {
	ctx.Pool.Disk().DropFile(run.file)
}
