// Package exec implements the query execution operators whose robustness
// the paper's maps visualize: table scans, index range scans, three row
// fetch strategies (traditional, improved, bitmap-driven), RID intersection
// joins (merge and hash), general equality joins, external sort with
// graceful and non-graceful spill policies, and aggregation.
//
// Operators follow the Volcano iterator model. All physical page access
// goes through the buffer pool, and all per-row CPU work is charged to the
// virtual clock, so a query's "execution time" is exactly the cost its plan
// shape induces — the quantity swept by the robustness maps.
package exec

import (
	"time"

	"robustmap/internal/mvcc"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// Per-row CPU cost constants. Their absolute values are calibrated so that
// CPU work is visible but I/O dominates at realistic data sizes, matching
// the 2009-era disk-bound systems the paper measured.
const (
	CostPredicate   = 25 * time.Nanosecond // evaluate one column predicate
	CostRowDecode   = 60 * time.Nanosecond // decode one stored row
	CostIndexEntry  = 20 * time.Nanosecond // produce one index entry
	CostEmit        = 10 * time.Nanosecond // hand one row to the consumer
	CostHashOp      = 50 * time.Nanosecond // hash-table insert or probe
	CostSortCompare = 25 * time.Nanosecond // row comparison during sort
	CostRIDCompare  = 15 * time.Nanosecond // RID comparison during RID sort
	CostBitmapOp    = 15 * time.Nanosecond // bitmap insert or test
)

// Ctx carries the per-query execution environment.
type Ctx struct {
	Clock *simclock.Clock
	Pool  *storage.Pool
	// Snap is the visibility horizon for versioned tables; ignored for
	// unversioned ones.
	Snap mvcc.Snapshot
	// MemoryBudget is the byte budget for memory-intensive operators
	// (sort, hash join). Zero means "effectively unlimited".
	MemoryBudget int64
}

// ChargeCPU charges n units of the given per-unit cost.
func (c *Ctx) ChargeCPU(acct simclock.Account, unit time.Duration, n int64) {
	if n <= 0 {
		return
	}
	c.Clock.Advance(acct, unit*time.Duration(n))
}

// Budget returns the effective memory budget in bytes.
func (c *Ctx) Budget() int64 {
	if c.MemoryBudget <= 0 {
		return 1 << 62
	}
	return c.MemoryBudget
}

// Row is an executor tuple.
type Row = []record.Value

// RowIter is the Volcano iterator over rows. Implementations are
// single-pass: Open, Next until false, Close. The returned row may be
// reused by the iterator; consumers must copy values they retain.
type RowIter interface {
	Open()
	Next() (Row, bool)
	Close()
}

// RIDIter is the Volcano iterator over record identifiers, produced by
// index scans and intersection joins and consumed by fetch operators.
type RIDIter interface {
	Open()
	Next() (storage.RID, bool)
	Close()
}

// Drain exhausts a row iterator and returns the row count — the standard
// way experiments execute a plan to completion without materializing
// results (the paper measures execution time, not result transfer).
func Drain(it RowIter) int64 {
	it.Open()
	defer it.Close()
	if bo, ok := it.(BatchOperator); ok {
		// Batch-capable root: drive the whole tree batch-at-a-time. The
		// virtual time measured is byte-identical to row-at-a-time
		// iteration (see batch.go); only the wall-clock cost drops.
		var n int64
		for {
			b, ok := bo.NextBatch()
			if !ok {
				return n
			}
			n += int64(b.Len())
		}
	}
	var n int64
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// DrainRIDs exhausts a RID iterator and returns the count.
func DrainRIDs(it RIDIter) int64 {
	it.Open()
	defer it.Close()
	var n int64
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// ColPred is a half-open interval predicate Lo <= col < Hi on one column.
// A Null bound is unbounded on that side. This is the predicate form of the
// paper's experiments (range restrictions on one or two columns).
type ColPred struct {
	Col int // ordinal in the operator's input row
	Lo  record.Value
	Hi  record.Value
}

// Matches evaluates the predicate.
func (p ColPred) Matches(row Row) bool {
	v := row[p.Col]
	if !p.Lo.IsNull() && record.Compare(v, p.Lo) < 0 {
		return false
	}
	if !p.Hi.IsNull() && record.Compare(v, p.Hi) >= 0 {
		return false
	}
	return true
}

// MatchesAll evaluates a conjunction, charging predicate CPU.
func MatchesAll(ctx *Ctx, preds []ColPred, row Row) bool {
	for i, p := range preds {
		ctx.ChargeCPU(simclock.AccountCPU, CostPredicate, 1)
		if !p.Matches(row) {
			_ = i
			return false
		}
	}
	return true
}
