package exec

import (
	"math/rand"
	"sort"
	"testing"

	"robustmap/internal/record"
)

func twoColSchema() *record.Schema {
	return record.NewSchema(
		record.Column{Name: "k", Type: record.TypeInt64},
		record.Column{Name: "v", Type: record.TypeInt64},
	)
}

// modelJoin computes the expected multiset of (lk, lv, rk, rv) join rows.
func modelJoin(left, right []Row) map[[4]int64]int {
	out := map[[4]int64]int{}
	for _, l := range left {
		for _, r := range right {
			if l[0].AsInt() == r[0].AsInt() {
				out[[4]int64{l[0].AsInt(), l[1].AsInt(), r[0].AsInt(), r[1].AsInt()}]++
			}
		}
	}
	return out
}

func joinResultMultiset(rows []Row) map[[4]int64]int {
	out := map[[4]int64]int{}
	for _, r := range rows {
		out[[4]int64{r[0].AsInt(), r[1].AsInt(), r[2].AsInt(), r[3].AsInt()}]++
	}
	return out
}

func randRows(n, keyRange int, seed int64) []Row {
	r := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{record.Int(int64(r.Intn(keyRange))), record.Int(int64(i))}
	}
	return rows
}

func sortedCopy(rows []Row) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	sort.SliceStable(out, func(i, j int) bool { return out[i][0].AsInt() < out[j][0].AsInt() })
	return out
}

func equalMultisets(a, b map[[4]int64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestMergeJoinRowsMatchesModel(t *testing.T) {
	e := newTestEnv(t, 101)
	left := randRows(200, 50, 1)
	right := randRows(300, 50, 2)
	want := modelJoin(left, right)

	j := NewMergeJoinRows(e.ctx,
		&SliceRows{Rows: sortedCopy(left)}, &SliceRows{Rows: sortedCopy(right)},
		[]int{0}, []int{0})
	got := joinResultMultiset(collectRows(j))
	if !equalMultisets(got, want) {
		t.Errorf("merge join multiset mismatch: %d result keys vs %d expected", len(got), len(want))
	}
}

func TestMergeJoinManyToMany(t *testing.T) {
	e := newTestEnv(t, 101)
	left := []Row{
		{record.Int(1), record.Int(10)}, {record.Int(1), record.Int(11)},
		{record.Int(2), record.Int(12)},
	}
	right := []Row{
		{record.Int(1), record.Int(20)}, {record.Int(1), record.Int(21)},
		{record.Int(1), record.Int(22)}, {record.Int(3), record.Int(23)},
	}
	j := NewMergeJoinRows(e.ctx, &SliceRows{Rows: left}, &SliceRows{Rows: right},
		[]int{0}, []int{0})
	out := collectRows(j)
	if len(out) != 6 { // 2 left × 3 right for key 1
		t.Errorf("many-to-many join produced %d rows, want 6", len(out))
	}
}

func TestMergeJoinEmptyInputs(t *testing.T) {
	e := newTestEnv(t, 101)
	nonEmpty := []Row{{record.Int(1), record.Int(2)}}
	cases := []struct{ l, r []Row }{
		{nil, nil}, {nonEmpty, nil}, {nil, nonEmpty},
	}
	for i, c := range cases {
		j := NewMergeJoinRows(e.ctx, &SliceRows{Rows: c.l}, &SliceRows{Rows: c.r},
			[]int{0}, []int{0})
		if out := collectRows(j); len(out) != 0 {
			t.Errorf("case %d: joined %d rows from empty input", i, len(out))
		}
	}
}

func TestHashJoinRowsMatchesModel(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := twoColSchema()
	left := randRows(200, 50, 3)
	right := randRows(300, 50, 4)
	want := modelJoin(left, right)
	j := NewHashJoinRows(e.ctx, &SliceRows{Rows: left}, &SliceRows{Rows: right},
		sch, sch, []int{0}, []int{0})
	got := joinResultMultiset(collectRows(j))
	if !equalMultisets(got, want) {
		t.Errorf("hash join multiset mismatch")
	}
}

func TestHashJoinGracePartitioning(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := twoColSchema()
	// Budget far below the build size forces grace partitioning.
	e.ctx.MemoryBudget = int64(sch.EncodedSizeEstimate()) * 50
	left := randRows(2000, 200, 5)
	right := randRows(1000, 200, 6)
	want := modelJoin(left, right)
	e.ctx.Clock.Reset()
	j := NewHashJoinRows(e.ctx, &SliceRows{Rows: left}, &SliceRows{Rows: right},
		sch, sch, []int{0}, []int{0})
	got := joinResultMultiset(collectRows(j))
	if !equalMultisets(got, want) {
		t.Fatal("grace hash join multiset mismatch")
	}
	if e.ctx.Clock.Spent("io.spill") == 0 {
		t.Error("grace partitioning charged no spill I/O")
	}
}

func TestHashJoinAgreesWithMergeJoin(t *testing.T) {
	e := newTestEnv(t, 101)
	sch := twoColSchema()
	left := randRows(500, 80, 7)
	right := randRows(500, 80, 8)
	h := NewHashJoinRows(e.ctx, &SliceRows{Rows: left}, &SliceRows{Rows: right},
		sch, sch, []int{0}, []int{0})
	m := NewMergeJoinRows(e.ctx, &SliceRows{Rows: sortedCopy(left)},
		&SliceRows{Rows: sortedCopy(right)}, []int{0}, []int{0})
	if !equalMultisets(joinResultMultiset(collectRows(h)), joinResultMultiset(collectRows(m))) {
		t.Error("hash and merge joins disagree")
	}
}

func TestHashAggregateCounts(t *testing.T) {
	e := newTestEnv(t, 101)
	var rows []Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, Row{record.Int(i % 4), record.Int(i)})
	}
	a := NewHashAggregate(e.ctx, &SliceRows{Rows: rows}, []int{0},
		[]AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1}})
	out := collectRows(a)
	if len(out) != 4 {
		t.Fatalf("aggregate produced %d groups, want 4", len(out))
	}
	for _, r := range out {
		g := r[0].AsInt()
		if r[1].AsInt() != 25 {
			t.Errorf("group %d count = %d, want 25", g, r[1].AsInt())
		}
		// Sum of g, g+4, ..., g+96 = 25g + 4*(0+1+...+24) = 25g + 1200.
		if want := float64(25*g + 1200); r[2].AsFloat() != want {
			t.Errorf("group %d sum = %g, want %g", g, r[2].AsFloat(), want)
		}
		if r[3].AsInt() != g {
			t.Errorf("group %d min = %d, want %d", g, r[3].AsInt(), g)
		}
		if want := g + 96; r[4].AsInt() != want {
			t.Errorf("group %d max = %d, want %d", g, r[4].AsInt(), want)
		}
	}
	// Deterministic group order (normalized key order = numeric order).
	for i := 1; i < len(out); i++ {
		if out[i-1][0].AsInt() >= out[i][0].AsInt() {
			t.Error("groups not in deterministic ascending order")
		}
	}
}

func TestHashAggregateEmptyInput(t *testing.T) {
	e := newTestEnv(t, 101)
	a := NewHashAggregate(e.ctx, &SliceRows{}, []int{0}, []AggSpec{{Kind: AggCount}})
	if out := collectRows(a); len(out) != 0 {
		t.Errorf("empty aggregate produced %d groups", len(out))
	}
}

func TestFilterProjectLimit(t *testing.T) {
	e := newTestEnv(t, 101)
	var rows []Row
	for i := int64(0); i < 50; i++ {
		rows = append(rows, Row{record.Int(i), record.Int(i * 2)})
	}
	f := NewFilter(e.ctx, &SliceRows{Rows: rows}, []ColPred{{Col: 0, Lo: record.Int(10), Hi: record.Int(30)}})
	p := NewProject(e.ctx, f, []int{1})
	l := NewLimit(p, 5)
	out := collectRows(l)
	if len(out) != 5 {
		t.Fatalf("limit yielded %d rows", len(out))
	}
	for i, r := range out {
		if len(r) != 1 || r[0].AsInt() != int64(10+i)*2 {
			t.Errorf("row %d = %v", i, r)
		}
	}
}
