package exec

import (
	"fmt"

	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// Filter applies a predicate conjunction to its input.
type Filter struct {
	ctx   *Ctx
	input RowIter
	preds []ColPred
}

// NewFilter constructs a filter.
func NewFilter(ctx *Ctx, input RowIter, preds []ColPred) *Filter {
	return &Filter{ctx: ctx, input: input, preds: preds}
}

// Open opens the input.
func (f *Filter) Open() { f.input.Open() }

// Next returns the next matching row.
func (f *Filter) Next() (Row, bool) {
	for {
		row, ok := f.input.Next()
		if !ok {
			return nil, false
		}
		if MatchesAll(f.ctx, f.preds, row) {
			return row, true
		}
	}
}

// Close closes the input.
func (f *Filter) Close() { f.input.Close() }

// Project narrows rows to the given column ordinals.
type Project struct {
	ctx   *Ctx
	input RowIter
	cols  []int
	out   Row
}

// NewProject constructs a projection.
func NewProject(ctx *Ctx, input RowIter, cols []int) *Project {
	return &Project{ctx: ctx, input: input, cols: cols}
}

// Open opens the input.
func (p *Project) Open() { p.input.Open() }

// Next returns the next projected row.
func (p *Project) Next() (Row, bool) {
	row, ok := p.input.Next()
	if !ok {
		return nil, false
	}
	p.out = p.out[:0]
	for _, c := range p.cols {
		p.out = append(p.out, row[c])
	}
	p.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return p.out, true
}

// Close closes the input.
func (p *Project) Close() { p.input.Close() }

// Limit stops after n rows.
type Limit struct {
	input RowIter
	n     int64
	seen  int64
}

// NewLimit constructs a limit.
func NewLimit(input RowIter, n int64) *Limit { return &Limit{input: input, n: n} }

// Open opens the input.
func (l *Limit) Open() {
	l.seen = 0
	l.input.Open()
}

// Next returns the next row while under the limit.
func (l *Limit) Next() (Row, bool) {
	if l.seen >= l.n {
		return nil, false
	}
	row, ok := l.input.Next()
	if !ok {
		return nil, false
	}
	l.seen++
	return row, true
}

// Close closes the input.
func (l *Limit) Close() { l.input.Close() }

// SliceRows adapts an in-memory row slice to a RowIter (tests, examples).
type SliceRows struct {
	Rows []Row
	pos  int
}

// Open rewinds.
func (s *SliceRows) Open() { s.pos = 0 }

// Next returns the next row.
func (s *SliceRows) Next() (Row, bool) {
	if s.pos >= len(s.Rows) {
		return nil, false
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, true
}

// Close is a no-op.
func (s *SliceRows) Close() {}

// AggKind enumerates the supported aggregates.
type AggKind int

// Supported aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// AggSpec is one aggregate over an input column (ignored for AggCount).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// HashAggregate groups by the given columns and computes aggregates.
// Output rows are the group-by columns followed by the aggregate values,
// in deterministic (normalized group key) order.
type HashAggregate struct {
	ctx     *Ctx
	input   RowIter
	groupBy []int
	aggs    []AggSpec

	keys   []string
	groups map[string]*aggState
	order  []string
	pos    int
	built  bool
	out    Row
}

type aggState struct {
	groupVals Row
	counts    []int64
	sums      []float64
	mins      []record.Value
	maxs      []record.Value
}

// NewHashAggregate constructs a grouping aggregate. Group state is assumed
// to fit in memory (the experiment queries group on low-cardinality keys).
func NewHashAggregate(ctx *Ctx, input RowIter, groupBy []int, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{ctx: ctx, input: input, groupBy: groupBy, aggs: aggs}
}

// Open opens the input.
func (a *HashAggregate) Open() { a.input.Open() }

func (a *HashAggregate) build() {
	a.groups = make(map[string]*aggState)
	for {
		row, ok := a.input.Next()
		if !ok {
			break
		}
		a.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		key := keyString(row, a.groupBy)
		st := a.groups[key]
		if st == nil {
			st = &aggState{
				counts: make([]int64, len(a.aggs)),
				sums:   make([]float64, len(a.aggs)),
				mins:   make([]record.Value, len(a.aggs)),
				maxs:   make([]record.Value, len(a.aggs)),
			}
			for _, g := range a.groupBy {
				st.groupVals = append(st.groupVals, row[g])
			}
			a.groups[key] = st
			a.order = append(a.order, key)
		}
		for i, spec := range a.aggs {
			st.counts[i]++
			switch spec.Kind {
			case AggSum:
				st.sums[i] += row[spec.Col].AsFloat()
			case AggMin:
				if st.mins[i].IsNull() || record.Compare(row[spec.Col], st.mins[i]) < 0 {
					st.mins[i] = row[spec.Col]
				}
			case AggMax:
				if st.maxs[i].IsNull() || record.Compare(row[spec.Col], st.maxs[i]) > 0 {
					st.maxs[i] = row[spec.Col]
				}
			}
		}
	}
	// Deterministic output order: sort keys lexicographically (normalized
	// keys order like the values themselves).
	sortStrings(a.order)
	a.built = true
}

// Next returns the next group row.
func (a *HashAggregate) Next() (Row, bool) {
	if !a.built {
		a.build()
	}
	if a.pos >= len(a.order) {
		return nil, false
	}
	st := a.groups[a.order[a.pos]]
	a.pos++
	a.out = a.out[:0]
	a.out = append(a.out, st.groupVals...)
	for i, spec := range a.aggs {
		switch spec.Kind {
		case AggCount:
			a.out = append(a.out, record.Int(st.counts[i]))
		case AggSum:
			a.out = append(a.out, record.Float(st.sums[i]))
		case AggMin:
			a.out = append(a.out, st.mins[i])
		case AggMax:
			a.out = append(a.out, st.maxs[i])
		default:
			panic(fmt.Sprintf("exec: unknown aggregate %d", spec.Kind))
		}
	}
	a.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return a.out, true
}

// Close closes the input.
func (a *HashAggregate) Close() { a.input.Close() }

func sortStrings(s []string) {
	// Insertion sort is fine: group counts in experiments are small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
