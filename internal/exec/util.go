package exec

import (
	"fmt"
	"time"

	"robustmap/internal/record"
	"robustmap/internal/simclock"
)

// Filter applies a predicate conjunction to its input.
type Filter struct {
	ctx   *Ctx
	input RowIter
	preds []ColPred

	bsrc   BatchOperator // batch-mode input, nil if input is row-only
	bInit  bool
	batch  *Batch  // own buffer when adapting a row-only input
	selBuf []int32 // selection storage installed on input batches
	eof    bool
}

// NewFilter constructs a filter.
func NewFilter(ctx *Ctx, input RowIter, preds []ColPred) *Filter {
	return &Filter{ctx: ctx, input: input, preds: preds}
}

// Open opens the input.
func (f *Filter) Open() { f.input.Open() }

// Next returns the next matching row.
func (f *Filter) Next() (Row, bool) {
	for {
		row, ok := f.input.Next()
		if !ok {
			return nil, false
		}
		if MatchesAll(f.ctx, f.preds, row) {
			return row, true
		}
	}
}

// NextBatch returns the next non-empty batch of matching rows. When the
// input is batch-capable the filter installs a selection vector on the
// input's batch (no row copies); batches whose rows are all eliminated are
// skipped, so consumers never see an empty batch. Predicate charges use the
// exact short-circuit counts of row-at-a-time evaluation.
func (f *Filter) NextBatch() (*Batch, bool) {
	if !f.bInit {
		f.bsrc, _ = f.input.(BatchOperator)
		f.bInit = true
	}
	if f.eof {
		return nil, false
	}
	if f.bsrc == nil {
		// Row-only input: the filter's own row path already applies the
		// predicates; batch it up.
		if f.batch == nil {
			f.batch = getBatch()
		}
		f.eof = f.batch.fillFromRows(f.Next)
		if f.batch.n == 0 {
			return nil, false
		}
		return f.batch, true
	}
	for {
		b, ok := f.bsrc.NextBatch()
		if !ok {
			f.eof = true
			return nil, false
		}
		var cpu time.Duration
		sel := f.selBuf[:0]
		if b.sel == nil {
			for i := 0; i < b.n; i++ {
				if matchesAllTally(f.preds, b.rows[i], &cpu) {
					sel = append(sel, int32(i))
				}
			}
		} else {
			for _, i := range b.sel {
				if matchesAllTally(f.preds, b.rows[i], &cpu) {
					sel = append(sel, i)
				}
			}
		}
		f.selBuf = sel
		f.ctx.chargeDur(simclock.AccountCPU, cpu)
		if len(sel) == 0 {
			continue
		}
		b.sel = sel
		return b, true
	}
}

// Close closes the input.
func (f *Filter) Close() {
	f.input.Close()
	putBatch(f.batch)
	f.batch = nil
}

// Project narrows rows to the given column ordinals.
type Project struct {
	ctx   *Ctx
	input RowIter
	cols  []int
	out   Row

	bsrc  BatchOperator
	bInit bool
	batch *Batch
	eof   bool
}

// NewProject constructs a projection.
func NewProject(ctx *Ctx, input RowIter, cols []int) *Project {
	return &Project{ctx: ctx, input: input, cols: cols}
}

// Open opens the input.
func (p *Project) Open() { p.input.Open() }

// Next returns the next projected row.
func (p *Project) Next() (Row, bool) {
	row, ok := p.input.Next()
	if !ok {
		return nil, false
	}
	p.out = p.out[:0]
	for _, c := range p.cols {
		p.out = append(p.out, row[c])
	}
	p.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return p.out, true
}

// NextBatch returns the next batch of projected rows. Projected values are
// struct copies that may alias the input batch's arena; the input batch
// stays valid until this operator's next NextBatch call, so the lifetimes
// coincide.
func (p *Project) NextBatch() (*Batch, bool) {
	if !p.bInit {
		p.bsrc, _ = p.input.(BatchOperator)
		p.bInit = true
	}
	if p.eof {
		return nil, false
	}
	if p.batch == nil {
		p.batch = getBatch()
	}
	if p.bsrc == nil {
		p.eof = p.batch.fillFromRows(p.Next)
		if p.batch.n == 0 {
			return nil, false
		}
		return p.batch, true
	}
	var in *Batch
	for {
		var ok bool
		in, ok = p.bsrc.NextBatch()
		if !ok {
			p.eof = true
			return nil, false
		}
		if in.Len() > 0 {
			break
		}
	}
	out := p.batch
	out.reset()
	n := in.Len()
	for i := 0; i < n; i++ {
		row := in.Row(i)
		r := out.rowBuf()
		for _, c := range p.cols {
			r = append(r, row[c])
		}
		out.commit(r)
	}
	p.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, int64(n))
	return out, true
}

// Close closes the input.
func (p *Project) Close() {
	p.input.Close()
	putBatch(p.batch)
	p.batch = nil
}

// Limit stops after n rows.
type Limit struct {
	input RowIter
	n     int64
	seen  int64

	bsrc   BatchOperator
	bInit  bool
	batch  *Batch
	selBuf []int32
	eof    bool
}

// NewLimit constructs a limit.
func NewLimit(input RowIter, n int64) *Limit { return &Limit{input: input, n: n} }

// Open opens the input.
func (l *Limit) Open() {
	l.seen = 0
	l.eof = false
	l.input.Open()
}

// Next returns the next row while under the limit.
func (l *Limit) Next() (Row, bool) {
	if l.seen >= l.n {
		return nil, false
	}
	row, ok := l.input.Next()
	if !ok {
		return nil, false
	}
	l.seen++
	return row, true
}

// NextBatch returns the next batch, cutting the final batch mid-way when
// the limit lands inside it (the cut truncates the selection vector; no
// rows are copied). A batch-mode producer may have read ahead within the
// batch the limit cuts — that read-ahead is real work the engine performed,
// exactly as in any vectorized system; row-at-a-time consumption (Next)
// remains available when demand-exact semantics matter.
func (l *Limit) NextBatch() (*Batch, bool) {
	if !l.bInit {
		l.bsrc, _ = l.input.(BatchOperator)
		l.bInit = true
	}
	if l.eof || l.seen >= l.n {
		return nil, false
	}
	if l.bsrc == nil {
		if l.batch == nil {
			l.batch = getBatch()
		}
		l.eof = l.batch.fillFromRows(l.Next)
		if l.batch.n == 0 {
			return nil, false
		}
		return l.batch, true
	}
	b, ok := l.bsrc.NextBatch()
	if !ok {
		l.eof = true
		return nil, false
	}
	remaining := l.n - l.seen
	live := int64(b.Len())
	if live <= remaining {
		l.seen += live
		return b, true
	}
	// Cut mid-batch: keep only the first `remaining` live rows.
	if b.sel != nil {
		b.sel = b.sel[:remaining]
	} else {
		sel := l.selBuf[:0]
		for i := int64(0); i < remaining; i++ {
			sel = append(sel, int32(i))
		}
		l.selBuf = sel
		b.sel = sel
	}
	l.seen = l.n
	return b, true
}

// Close closes the input.
func (l *Limit) Close() {
	l.input.Close()
	putBatch(l.batch)
	l.batch = nil
}

// SliceRows adapts an in-memory row slice to a RowIter (tests, examples).
type SliceRows struct {
	Rows []Row
	pos  int
}

// Open rewinds.
func (s *SliceRows) Open() { s.pos = 0 }

// Next returns the next row.
func (s *SliceRows) Next() (Row, bool) {
	if s.pos >= len(s.Rows) {
		return nil, false
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, true
}

// Close is a no-op.
func (s *SliceRows) Close() {}

// AggKind enumerates the supported aggregates.
type AggKind int

// Supported aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// AggSpec is one aggregate over an input column (ignored for AggCount).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// HashAggregate groups by the given columns and computes aggregates.
// Output rows are the group-by columns followed by the aggregate values,
// in deterministic (normalized group key) order.
type HashAggregate struct {
	ctx     *Ctx
	input   RowIter
	groupBy []int
	aggs    []AggSpec

	keys   []string
	groups map[string]*aggState
	order  []string
	pos    int
	built  bool
	out    Row
	batch  *Batch
	eof    bool
}

type aggState struct {
	groupVals Row
	counts    []int64
	sums      []float64
	mins      []record.Value
	maxs      []record.Value
}

// NewHashAggregate constructs a grouping aggregate. Group state is assumed
// to fit in memory (the experiment queries group on low-cardinality keys).
func NewHashAggregate(ctx *Ctx, input RowIter, groupBy []int, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{ctx: ctx, input: input, groupBy: groupBy, aggs: aggs}
}

// Open opens the input.
func (a *HashAggregate) Open() { a.input.Open() }

func (a *HashAggregate) build() {
	a.groups = make(map[string]*aggState)
	for {
		row, ok := a.input.Next()
		if !ok {
			break
		}
		a.ctx.ChargeCPU(simclock.AccountHash, CostHashOp, 1)
		key := keyString(row, a.groupBy)
		st := a.groups[key]
		if st == nil {
			st = &aggState{
				counts: make([]int64, len(a.aggs)),
				sums:   make([]float64, len(a.aggs)),
				mins:   make([]record.Value, len(a.aggs)),
				maxs:   make([]record.Value, len(a.aggs)),
			}
			for _, g := range a.groupBy {
				st.groupVals = append(st.groupVals, row[g])
			}
			a.groups[key] = st
			a.order = append(a.order, key)
		}
		for i, spec := range a.aggs {
			st.counts[i]++
			switch spec.Kind {
			case AggSum:
				st.sums[i] += row[spec.Col].AsFloat()
			case AggMin:
				if st.mins[i].IsNull() || record.Compare(row[spec.Col], st.mins[i]) < 0 {
					st.mins[i] = row[spec.Col]
				}
			case AggMax:
				if st.maxs[i].IsNull() || record.Compare(row[spec.Col], st.maxs[i]) > 0 {
					st.maxs[i] = row[spec.Col]
				}
			}
		}
	}
	// Deterministic output order: sort keys lexicographically (normalized
	// keys order like the values themselves).
	sortStrings(a.order)
	a.built = true
}

// buildBatched drains a batch-capable input. The input is fully consumed in
// either mode, so its I/O order is unchanged; hash charges are summed per
// batch. Retained values (group keys, MIN/MAX state) are cloned because
// batch rows may alias their batch's arena.
func (a *HashAggregate) buildBatched(src BatchOperator) {
	a.groups = make(map[string]*aggState)
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		var hash time.Duration
		n := b.Len()
		for r := 0; r < n; r++ {
			row := b.Row(r)
			hash += CostHashOp
			key := keyString(row, a.groupBy)
			st := a.groups[key]
			if st == nil {
				st = &aggState{
					counts: make([]int64, len(a.aggs)),
					sums:   make([]float64, len(a.aggs)),
					mins:   make([]record.Value, len(a.aggs)),
					maxs:   make([]record.Value, len(a.aggs)),
				}
				for _, g := range a.groupBy {
					st.groupVals = append(st.groupVals, row[g].Clone())
				}
				a.groups[key] = st
				a.order = append(a.order, key)
			}
			for i, spec := range a.aggs {
				st.counts[i]++
				switch spec.Kind {
				case AggSum:
					st.sums[i] += row[spec.Col].AsFloat()
				case AggMin:
					if st.mins[i].IsNull() || record.Compare(row[spec.Col], st.mins[i]) < 0 {
						st.mins[i] = row[spec.Col].Clone()
					}
				case AggMax:
					if st.maxs[i].IsNull() || record.Compare(row[spec.Col], st.maxs[i]) > 0 {
						st.maxs[i] = row[spec.Col].Clone()
					}
				}
			}
		}
		a.ctx.chargeDur(simclock.AccountHash, hash)
	}
	sortStrings(a.order)
	a.built = true
}

// NextBatch returns group rows in batches. The build phase consumes the
// input in batch mode when it supports it; emission reuses the row path
// (group counts are small).
func (a *HashAggregate) NextBatch() (*Batch, bool) {
	if !a.built {
		if src, ok := a.input.(BatchOperator); ok {
			a.buildBatched(src)
		} else {
			a.build()
		}
	}
	if a.eof {
		return nil, false
	}
	if a.batch == nil {
		a.batch = getBatch()
	}
	a.eof = a.batch.fillFromRows(a.Next)
	if a.batch.n == 0 {
		return nil, false
	}
	return a.batch, true
}

// Next returns the next group row.
func (a *HashAggregate) Next() (Row, bool) {
	if !a.built {
		a.build()
	}
	if a.pos >= len(a.order) {
		return nil, false
	}
	st := a.groups[a.order[a.pos]]
	a.pos++
	a.out = a.out[:0]
	a.out = append(a.out, st.groupVals...)
	for i, spec := range a.aggs {
		switch spec.Kind {
		case AggCount:
			a.out = append(a.out, record.Int(st.counts[i]))
		case AggSum:
			a.out = append(a.out, record.Float(st.sums[i]))
		case AggMin:
			a.out = append(a.out, st.mins[i])
		case AggMax:
			a.out = append(a.out, st.maxs[i])
		default:
			panic(fmt.Sprintf("exec: unknown aggregate %d", spec.Kind))
		}
	}
	a.ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return a.out, true
}

// Close closes the input.
func (a *HashAggregate) Close() {
	a.input.Close()
	putBatch(a.batch)
	a.batch = nil
}

func sortStrings(s []string) {
	// Insertion sort is fine: group counts in experiments are small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
