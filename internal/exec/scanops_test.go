package exec

import (
	"testing"

	"robustmap/internal/record"
)

func TestCoveringIndexScanMatchesModel(t *testing.T) {
	e := newTestEnv(t, 2003)
	// idx(a,b) covering scan with a range on a and a residual on b
	// (ordinals refer to the index column list: 0 = a, 1 = b).
	lo, hi := []byte(nil), e.ixAB.PrefixFor(record.Int(800))
	s := NewCoveringIndexScan(e.ctx, e.ixAB, lo, hi,
		[]ColPred{{Col: 1, Hi: record.Int(500)}})
	got := Drain(s)
	if want := e.modelCount(800, 500); got != want {
		t.Errorf("covering scan = %d rows, want %d", got, want)
	}
}

func TestCoveringIndexScanEmitsKeyColumns(t *testing.T) {
	e := newTestEnv(t, 503)
	s := NewCoveringIndexScan(e.ctx, e.ixAB, nil, e.ixAB.PrefixFor(record.Int(10)), nil)
	s.Open()
	defer s.Close()
	var prev int64 = -1
	for {
		row, ok := s.Next()
		if !ok {
			break
		}
		if len(row) != 2 {
			t.Fatalf("covering row has %d columns, want 2", len(row))
		}
		a := row[0].AsInt()
		if a >= 10 || a <= prev {
			t.Fatalf("covering scan a=%d out of range or order (prev %d)", a, prev)
		}
		prev = a
	}
}

func TestCoveringIndexScanRejectsNonCovering(t *testing.T) {
	e := newTestEnv(t, 101)
	e.ixA.Covering = false
	defer func() {
		e.ixA.Covering = true
		if recover() == nil {
			t.Fatal("expected panic for non-covering index")
		}
	}()
	NewCoveringIndexScan(e.ctx, e.ixA, nil, nil, nil)
}

func TestIndexKeyFilterScanMatchesModel(t *testing.T) {
	e := newTestEnv(t, 2003)
	lo, hi := []byte(nil), e.ixAB.PrefixFor(record.Int(900))
	s := NewIndexKeyFilterScan(e.ctx, e.ixAB, lo, hi,
		[]ColPred{{Col: 1, Hi: record.Int(300)}})
	got := DrainRIDs(s)
	if want := e.modelCount(900, 300); got != want {
		t.Errorf("key filter scan = %d RIDs, want %d", got, want)
	}
}

func TestIndexKeyFilterScanNoPredsEqualsRangeScan(t *testing.T) {
	e := newTestEnv(t, 1009)
	lo, hi := []byte(nil), e.ixA.PrefixFor(record.Int(123))
	filtered := DrainRIDs(NewIndexKeyFilterScan(e.ctx, e.ixA, lo, hi, nil))
	plain := DrainRIDs(NewIndexRangeScan(e.ctx, e.ixA, lo, hi))
	if filtered != plain || filtered != 123 {
		t.Errorf("filter=%d plain=%d want 123", filtered, plain)
	}
}

func TestIndexKeyFilterScanRIDsPointAtMatchingRows(t *testing.T) {
	e := newTestEnv(t, 503)
	s := NewIndexKeyFilterScan(e.ctx, e.ixAB, nil, e.ixAB.PrefixFor(record.Int(200)),
		[]ColPred{{Col: 1, Hi: record.Int(100)}})
	s.Open()
	defer s.Close()
	for {
		rid, ok := s.Next()
		if !ok {
			break
		}
		rec, found := e.tbl.Heap.Fetch(rid)
		if !found {
			t.Fatalf("RID %v dangling", rid)
		}
		row, _, err := e.tbl.Schema.Decode(rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if row[1].AsInt() >= 200 || row[2].AsInt() >= 100 {
			t.Fatalf("row (a=%d,b=%d) fails the entry predicates",
				row[1].AsInt(), row[2].AsInt())
		}
	}
}

func TestSpillPolicyString(t *testing.T) {
	if PolicyGraceful.String() != "graceful" || PolicyDegenerate.String() != "degenerate" {
		t.Error("policy names wrong")
	}
	if SpillPolicy(99).String() != "unknown" {
		t.Error("unknown policy name wrong")
	}
}

func TestValueHashCoversTypes(t *testing.T) {
	vals := []record.Value{
		record.Null, record.Int(42), record.Float(2.5), record.String_("xyz"),
		record.Bytes([]byte{1, 2}), record.Date(100), record.Bool(true), record.Bool(false),
	}
	seen := map[uint64][]int{}
	for i, v := range vals {
		h := valueHash(v)
		seen[h] = append(seen[h], i)
	}
	// All eight inputs should hash distinctly (they are tiny and disjoint).
	if len(seen) < 7 {
		t.Errorf("valueHash collides heavily: %v", seen)
	}
	// Determinism.
	for _, v := range vals {
		if valueHash(v) != valueHash(v) {
			t.Error("valueHash nondeterministic")
		}
	}
}
