package exec

import (
	"math/bits"
	"time"

	"robustmap/internal/bitmap"
	"robustmap/internal/catalog"
	"robustmap/internal/mvcc"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

// fetchRow resolves one RID to a decoded, visibility-checked row, applying
// residual predicates. Shared by all fetch strategies.
func fetchRow(ctx *Ctx, t *catalog.Table, rid storage.RID, preds []ColPred, row Row) (Row, bool) {
	rec, ok := t.Heap.Fetch(rid)
	if !ok {
		return row, false
	}
	payload := rec
	if t.Versioned != nil {
		h, p := mvcc.DecodeHeader(rec)
		if !ctx.Snap.Visible(h) {
			return row, false
		}
		payload = p
	}
	ctx.ChargeCPU(simclock.AccountCPU, CostRowDecode, 1)
	row = row[:0]
	var err error
	row, _, err = t.Schema.Decode(payload, row)
	if err != nil {
		panic("exec: corrupt row during fetch: " + err.Error())
	}
	if !MatchesAll(ctx, preds, row) {
		return row, false
	}
	ctx.ChargeCPU(simclock.AccountCPU, CostEmit, 1)
	return row, true
}

// fetchRowBatch is fetchRow for batch mode: the row decodes into
// batch-owned storage (arena-backed) and CPU costs accumulate into cpu
// instead of being charged per row. The heap and buffer-pool access
// sequence is identical to fetchRow's.
func fetchRowBatch(ctx *Ctx, t *catalog.Table, rid storage.RID, preds []ColPred, b *Batch, cpu *time.Duration) bool {
	rec, ok := t.Heap.Fetch(rid)
	if !ok {
		return false
	}
	payload := rec
	if t.Versioned != nil {
		h, p := mvcc.DecodeHeader(rec)
		if !ctx.Snap.Visible(h) {
			return false
		}
		payload = p
	}
	*cpu += CostRowDecode
	row := b.rowBuf()
	var err error
	row, b.arena, _, err = t.Schema.DecodeArena(payload, row, b.arena)
	if err != nil {
		panic("exec: corrupt row during fetch: " + err.Error())
	}
	if !matchesAllTally(preds, row, cpu) {
		b.store(row)
		return false
	}
	*cpu += CostEmit
	b.commit(row)
	return true
}

// TraditionalFetch resolves RIDs in their arrival order — the index's key
// order, which is physically scattered. Every fetch is a random page
// access; the cost grows linearly with the number of fetched rows. This is
// the plan whose "cost is so high that it is not even shown across the
// entire range" in Figure 1.
type TraditionalFetch struct {
	ctx   *Ctx
	table *catalog.Table
	input RIDIter
	preds []ColPred
	row   Row
	batch *Batch
	eof   bool
}

// NewTraditionalFetch constructs the row-at-a-time fetch.
func NewTraditionalFetch(ctx *Ctx, t *catalog.Table, input RIDIter, preds []ColPred) *TraditionalFetch {
	return &TraditionalFetch{ctx: ctx, table: t, input: input, preds: preds}
}

// Open opens the RID source.
func (f *TraditionalFetch) Open() { f.input.Open() }

// Next fetches the next qualifying row.
func (f *TraditionalFetch) Next() (Row, bool) {
	for {
		rid, ok := f.input.Next()
		if !ok {
			return nil, false
		}
		var hit bool
		f.row, hit = fetchRow(f.ctx, f.table, rid, f.preds, f.row)
		if hit {
			return f.row, true
		}
	}
}

// NextBatch returns the next batch of qualifying rows. RIDs are still
// pulled from the input one at a time — the defining property of the
// traditional fetch is that its index I/O interleaves with its heap I/O
// per row, and batching must not change that order.
func (f *TraditionalFetch) NextBatch() (*Batch, bool) {
	if f.eof {
		return nil, false
	}
	if f.batch == nil {
		f.batch = getBatch()
	}
	b := f.batch
	b.reset()
	var cpu time.Duration
	for b.n < BatchCapacity {
		rid, ok := f.input.Next()
		if !ok {
			f.eof = true
			break
		}
		fetchRowBatch(f.ctx, f.table, rid, f.preds, b, &cpu)
	}
	f.ctx.chargeDur(simclock.AccountCPU, cpu)
	if b.n == 0 {
		return nil, false
	}
	return b, true
}

// Close closes the RID source.
func (f *TraditionalFetch) Close() {
	f.input.Close()
	putBatch(f.batch)
	f.batch = nil
}

// ImprovedFetch is the paper's "improved index scan" fetch stage: it
// accumulates a batch of RIDs, sorts them into physical order, and fetches
// pages in ascending order, streaming through small gaps rather than
// seeking (reading a few unneeded pages is cheaper than a seek whenever the
// gap is shorter than seek/transfer pages).
//
// The batch size is bounded by the operator memory budget. When the result
// is larger than one batch, pages can be visited once per batch — the
// residual non-robustness that makes the improved plan "about 2½ times
// worse than a table scan" at 100% selectivity in Figure 1.
type ImprovedFetch struct {
	ctx      *Ctx
	table    *catalog.Table
	input    RIDIter
	preds    []ColPred
	maxBatch int

	batch     []storage.RID
	batchPos  int
	exhausted bool
	row       Row
	lastPage  storage.PageNo

	out      *Batch     // batch-mode output buffer
	outEOF   bool       // batch mode reported exhaustion
	driven   bool       // NextBatch drives this fetch; refill pulls RID batches
	bsrc     RIDBatcher // batched RID source, if the input supports it
	sortKeys []uint64   // scratch for the packed RID sort

	// DisableGapStreaming turns off the stream-through-short-gaps
	// optimization, paying a seek for every page change — the ablation
	// baseline showing why the "improved" scan needs more than RID
	// sorting alone.
	DisableGapStreaming bool
}

// RIDMemBytes is the accounting size of one buffered RID.
const RIDMemBytes = 16

// NewImprovedFetch constructs the sorted-batch fetch. maxBatch <= 0 derives
// the batch size from the context's memory budget.
func NewImprovedFetch(ctx *Ctx, t *catalog.Table, input RIDIter, preds []ColPred, maxBatch int) *ImprovedFetch {
	if maxBatch <= 0 {
		b := ctx.Budget() / RIDMemBytes
		if b > 1<<28 {
			b = 1 << 28
		}
		maxBatch = int(b)
		if maxBatch < 1 {
			maxBatch = 1
		}
	}
	return &ImprovedFetch{ctx: ctx, table: t, input: input, preds: preds, maxBatch: maxBatch}
}

// Open opens the RID source.
func (f *ImprovedFetch) Open() {
	f.input.Open()
	f.lastPage = -1
}

// Next fetches the next qualifying row, refilling and sorting batches as
// needed.
func (f *ImprovedFetch) Next() (Row, bool) {
	for {
		if f.batchPos < len(f.batch) {
			rid := f.batch[f.batchPos]
			f.batchPos++
			f.stepTo(rid.Page)
			var hit bool
			f.row, hit = fetchRow(f.ctx, f.table, rid, f.preds, f.row)
			if hit {
				return f.row, true
			}
			continue
		}
		if f.exhausted {
			return nil, false
		}
		f.refill()
		if len(f.batch) == 0 && f.exhausted {
			return nil, false
		}
	}
}

// refill pulls the next batch of RIDs and sorts it physically. In batch
// mode RIDs arrive in bounded sub-batches whose budget stops the producer's
// index I/O at exactly the entry row-at-a-time pulls would have stopped at;
// either way the RID stream content and order are identical, so the sorted
// batch — and every page access it drives — is too.
func (f *ImprovedFetch) refill() {
	f.batch = f.batch[:0]
	f.batchPos = 0
	if f.driven && f.bsrc != nil {
		for len(f.batch) < f.maxBatch {
			rids, ok := f.bsrc.NextRIDBatch(f.maxBatch - len(f.batch))
			if !ok {
				f.exhausted = true
				break
			}
			f.batch = append(f.batch, rids...)
		}
	} else {
		for len(f.batch) < f.maxBatch {
			rid, ok := f.input.Next()
			if !ok {
				f.exhausted = true
				break
			}
			f.batch = append(f.batch, rid)
		}
	}
	n := len(f.batch)
	if n > 1 {
		// RIDs are unique, so any comparison sort yields the same
		// permutation; the packed sort avoids per-comparison calls.
		f.sortKeys = sortRIDsInPlace(f.batch, f.sortKeys)
		// n log2 n comparisons.
		f.ctx.ChargeCPU(simclock.AccountSort, CostRIDCompare,
			int64(n)*int64(bits.Len(uint(n))))
	}
	// A fresh batch restarts the gap-streaming state: the device would seek
	// back to the start of the table anyway.
	f.lastPage = -1
}

// stepTo positions the device at the page, streaming through short gaps.
func (f *ImprovedFetch) stepTo(page storage.PageNo) {
	if page == f.lastPage {
		return // same page as previous row: already resident
	}
	if f.DisableGapStreaming {
		f.lastPage = page
		return
	}
	gapLimit := f.gapLimit()
	if f.lastPage >= 0 && page > f.lastPage && page-f.lastPage <= gapLimit {
		// Stream through the gap: prefetch the run up to and including the
		// target page. Unneeded pages cost transfer time only.
		f.ctx.Pool.Prefetch(f.table.Heap.File(), f.lastPage+1, int(page-f.lastPage))
	}
	f.lastPage = page
}

// gapLimit returns the break-even gap length in pages: below this,
// streaming beats seeking.
func (f *ImprovedFetch) gapLimit() storage.PageNo {
	p := f.ctx.Pool.Device().Params()
	if p.PageTransfer <= 0 {
		return 1
	}
	return storage.PageNo(p.SeekLatency / p.PageTransfer)
}

// NextBatch returns the next batch of qualifying rows, refilling and
// sorting RID batches as needed. The per-RID page positioning (stepTo) and
// heap access sequence are identical to row-at-a-time Next.
func (f *ImprovedFetch) NextBatch() (*Batch, bool) {
	if f.outEOF {
		return nil, false
	}
	if !f.driven {
		f.driven = true
		f.bsrc, _ = f.input.(RIDBatcher)
	}
	if f.out == nil {
		f.out = getBatch()
	}
	b := f.out
	b.reset()
	var cpu time.Duration
	for b.n < BatchCapacity {
		if f.batchPos < len(f.batch) {
			rid := f.batch[f.batchPos]
			f.batchPos++
			f.stepTo(rid.Page)
			fetchRowBatch(f.ctx, f.table, rid, f.preds, b, &cpu)
			continue
		}
		if f.exhausted {
			f.outEOF = true
			break
		}
		f.refill()
		if len(f.batch) == 0 && f.exhausted {
			f.outEOF = true
			break
		}
	}
	f.ctx.chargeDur(simclock.AccountCPU, cpu)
	if b.n == 0 {
		return nil, false
	}
	return b, true
}

// Close closes the RID source.
func (f *ImprovedFetch) Close() {
	f.input.Close()
	putBatch(f.out)
	f.out = nil
}

// BitmapFetch accumulates all input RIDs into a bitmap, then fetches in
// physical order exactly once per page — the System B strategy of Figure 8
// ("rows to be fetched are sorted very efficiently using a bitmap").
// Unlike ImprovedFetch there is no batch limit: the bitmap is compact
// enough to hold the whole result, so pages are never revisited.
type BitmapFetch struct {
	ctx   *Ctx
	table *catalog.Table
	input RIDIter
	preds []ColPred

	rids     []storage.RID
	pos      int
	row      Row
	lastPage storage.PageNo
	built    bool

	out    *Batch
	outEOF bool
	driven bool
}

// NewBitmapFetch constructs the bitmap-driven fetch.
func NewBitmapFetch(ctx *Ctx, t *catalog.Table, input RIDIter, preds []ColPred) *BitmapFetch {
	return &BitmapFetch{ctx: ctx, table: t, input: input, preds: preds}
}

// Open opens the RID source.
func (f *BitmapFetch) Open() {
	f.input.Open()
	f.lastPage = -1
}

func (f *BitmapFetch) build() {
	bm := bitmap.New(f.table.Heap.File())
	if bsrc, ok := f.input.(RIDBatcher); f.driven && ok {
		// Batched gather: the whole input is drained either way, so the
		// RID stream and its I/O order are unchanged; only the bitmap-op
		// charges are summed per sub-batch.
		var cpu time.Duration
		for {
			rids, ok := bsrc.NextRIDBatch(ridBatchCap)
			if !ok {
				break
			}
			cpu += CostBitmapOp * time.Duration(len(rids))
			for _, rid := range rids {
				bm.Add(rid)
			}
		}
		f.ctx.chargeDur(simclock.AccountCPU, cpu)
	} else {
		for {
			rid, ok := f.input.Next()
			if !ok {
				break
			}
			f.ctx.ChargeCPU(simclock.AccountCPU, CostBitmapOp, 1)
			bm.Add(rid)
		}
	}
	f.rids = make([]storage.RID, 0, bm.Len())
	bm.Iterate(func(rid storage.RID) bool {
		f.rids = append(f.rids, rid)
		return true
	})
	f.built = true
}

// Next fetches the next qualifying row in physical order.
func (f *BitmapFetch) Next() (Row, bool) {
	if !f.built {
		f.build()
	}
	for f.pos < len(f.rids) {
		rid := f.rids[f.pos]
		f.pos++
		f.stepTo(rid.Page)
		var hit bool
		f.row, hit = fetchRow(f.ctx, f.table, rid, f.preds, f.row)
		if hit {
			return f.row, true
		}
	}
	return nil, false
}

func (f *BitmapFetch) stepTo(page storage.PageNo) {
	if page == f.lastPage {
		return
	}
	p := f.ctx.Pool.Device().Params()
	gapLimit := storage.PageNo(p.SeekLatency / p.PageTransfer)
	if f.lastPage >= 0 && page > f.lastPage && page-f.lastPage <= gapLimit {
		f.ctx.Pool.Prefetch(f.table.Heap.File(), f.lastPage+1, int(page-f.lastPage))
	}
	f.lastPage = page
}

// NextBatch returns the next batch of qualifying rows in physical order.
func (f *BitmapFetch) NextBatch() (*Batch, bool) {
	if f.outEOF {
		return nil, false
	}
	f.driven = true
	if !f.built {
		f.build()
	}
	if f.out == nil {
		f.out = getBatch()
	}
	b := f.out
	b.reset()
	var cpu time.Duration
	for b.n < BatchCapacity && f.pos < len(f.rids) {
		rid := f.rids[f.pos]
		f.pos++
		f.stepTo(rid.Page)
		fetchRowBatch(f.ctx, f.table, rid, f.preds, b, &cpu)
	}
	if f.pos >= len(f.rids) {
		f.outEOF = true
	}
	f.ctx.chargeDur(simclock.AccountCPU, cpu)
	if b.n == 0 {
		return nil, false
	}
	return b, true
}

// Close closes the RID source.
func (f *BitmapFetch) Close() {
	f.input.Close()
	putBatch(f.out)
	f.out = nil
}
