package exec

import (
	"slices"

	"robustmap/internal/storage"
)

// sortRIDsInPlace sorts rids into ascending physical order. When every RID
// fits the packed 16-bit-file / 32-bit-page / 16-bit-slot form — always, for
// the data sizes the experiments build — it sorts packed uint64 keys, which
// avoids a comparison-function call per sort step. RIDs are unique, so both
// paths produce the same permutation; callers charge the analytic sort cost
// themselves, so the physical sort algorithm is not observable in virtual
// time. The returned slice is the (possibly grown) scratch buffer, handed
// back so steady-state callers reuse it.
func sortRIDsInPlace(rids []storage.RID, scratch []uint64) []uint64 {
	for _, r := range rids {
		if r.File >= 1<<16 || r.Page < 0 || r.Page >= 1<<32 {
			slices.SortFunc(rids, storage.RID.Compare)
			return scratch
		}
	}
	keys := scratch[:0]
	for _, r := range rids {
		keys = append(keys, uint64(r.File)<<48|uint64(r.Page)<<16|uint64(r.Slot))
	}
	slices.Sort(keys)
	for i, k := range keys {
		rids[i] = storage.RID{
			File: storage.FileID(k >> 48),
			Page: storage.PageNo(k >> 16 & 0xFFFFFFFF),
			Slot: storage.Slot(k & 0xFFFF),
		}
	}
	return keys
}
