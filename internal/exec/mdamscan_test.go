package exec

import (
	"testing"

	"robustmap/internal/catalog"
	"robustmap/internal/iomodel"
	"robustmap/internal/mdam"
	"robustmap/internal/record"
	"robustmap/internal/simclock"
	"robustmap/internal/storage"
)

func TestMDAMScanMatchesModel(t *testing.T) {
	e := newTestEnv(t, 2003)
	cases := []struct{ ta, tb int64 }{
		{0, 100}, {100, 0}, {1, e.n}, {e.n, 1}, {150, 900}, {e.n, e.n},
	}
	for _, c := range cases {
		s := NewMDAMScan(e.ctx, e.ixAB,
			mdam.LessThan(record.Int(c.ta)), mdam.LessThan(record.Int(c.tb)))
		got := Drain(s)
		if want := e.modelCount(c.ta, c.tb); got != want {
			t.Errorf("MDAM (ta=%d,tb=%d) = %d rows, want %d", c.ta, c.tb, got, want)
		}
	}
}

func TestMDAMScanMultiInterval(t *testing.T) {
	e := newTestEnv(t, 1009)
	lead := mdam.Normalize([]mdam.Interval{
		{Lo: record.Int(0), Hi: record.Int(100)},
		{Lo: record.Int(500), Hi: record.Int(600)},
	})
	second := mdam.Normalize([]mdam.Interval{
		{Lo: record.Int(200), Hi: record.Int(400)},
	})
	got := Drain(NewMDAMScan(e.ctx, e.ixAB, lead, second))
	var want int64
	for i := int64(0); i < e.n; i++ {
		a, b := (i*37)%e.n, (i*61)%e.n
		if lead.Contains(record.Int(a)) && second.Contains(record.Int(b)) {
			want++
		}
	}
	if got != want {
		t.Errorf("multi-interval MDAM = %d, want %d", got, want)
	}
}

func TestMDAMScanEmptySets(t *testing.T) {
	e := newTestEnv(t, 503)
	if got := Drain(NewMDAMScan(e.ctx, e.ixAB, nil, mdam.All())); got != 0 {
		t.Errorf("empty lead set yielded %d rows", got)
	}
	if got := Drain(NewMDAMScan(e.ctx, e.ixAB, mdam.All(), nil)); got != 0 {
		t.Errorf("empty second set yielded %d rows", got)
	}
}

func TestMDAMScanPanicsOnWrongIndex(t *testing.T) {
	e := newTestEnv(t, 101)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for one-column index")
		}
	}()
	NewMDAMScan(e.ctx, e.ixA, mdam.All(), mdam.All())
}

// duplicatedLeadEnv builds a table whose (g, b) index has heavy duplication
// in the leading column — the regime where MDAM's probe-past-group logic
// pays off.
func duplicatedLeadEnv(t *testing.T, n, groups int64) (*Ctx, *catalog.Index) {
	t.Helper()
	clock := simclock.New()
	dev := iomodel.NewDevice(iomodel.DefaultParams(), clock)
	pool := storage.NewPool(storage.NewDisk(), dev, clock, 512)
	sch := record.NewSchema(
		record.Column{Name: "g", Type: record.TypeInt64},
		record.Column{Name: "b", Type: record.TypeInt64},
	)
	tbl := &catalog.Table{Name: "d", Schema: sch, Heap: storage.CreateHeap(pool)}
	for i := int64(0); i < n; i++ {
		enc, _ := sch.Encode(nil, []record.Value{
			record.Int(i % groups), record.Int((i * 61) % n),
		})
		tbl.Heap.Append(enc)
	}
	ix, err := catalog.BuildIndex("d_gb", tbl, catalog.Loader(pool, clock), true, "g", "b")
	if err != nil {
		t.Fatal(err)
	}
	clock.Reset()
	return &Ctx{Clock: clock, Pool: pool, MemoryBudget: 1 << 30}, ix
}

func TestMDAMProbesSkipLargeGroups(t *testing.T) {
	const n, groups = 20000, 10
	ctx, ix := duplicatedLeadEnv(t, n, groups)
	// Second column restricted to a narrow band: within each of the 10
	// leading groups (2000 entries each), once b exceeds the band the scan
	// must probe to the next group rather than grinding through entries.
	s := NewMDAMScan(ctx, ix, mdam.All(), mdam.Range(record.Int(0), record.Int(50)))
	got := Drain(s)
	var want int64
	for i := int64(0); i < n; i++ {
		if (i*61)%n < 50 {
			want++
		}
	}
	if got != want {
		t.Fatalf("MDAM = %d rows, want %d", got, want)
	}
	if s.Probes == 0 {
		t.Error("MDAM made no probes on a heavily duplicated leading column")
	}
}

func TestMDAMProbingBeatsPlainScanOnDuplicatedLead(t *testing.T) {
	// Probing pays one random leaf read (a seek) to skip the rest of a
	// leading-value group, so it wins only when groups span far more leaf
	// pages than the device's seek/transfer ratio (~50). Two groups of
	// 100k entries span ~330 leaves each.
	const n, groups = 200000, 2
	ctx, ix := duplicatedLeadEnv(t, n, groups)
	// A middle band on the second column: within each leading group the
	// scan must climb past b < 1000 misses (adaptive probe to b=1000) and
	// then bail at b >= 1020 (probe to the next group).
	band := mdam.Range(record.Int(1000), record.Int(1020))
	cost := func(disable bool) (int64, int64) {
		ctx.Pool.FlushAll()
		ctx.Clock.Reset()
		s := NewMDAMScan(ctx, ix, mdam.All(), band)
		s.DisableProbes = disable
		rows := Drain(s)
		return int64(ctx.Clock.Now()), rows
	}
	withProbes, rows1 := cost(false)
	scanOnly, rows2 := cost(true)
	if rows1 != rows2 {
		t.Fatalf("probe and scan-only row counts differ: %d vs %d", rows1, rows2)
	}
	if withProbes*2 > scanOnly {
		t.Errorf("MDAM with probes %d not >= 2x cheaper than scan-only %d", withProbes, scanOnly)
	}
}

func TestMDAMCostBoundedByLeadingRange(t *testing.T) {
	// On the unique-leading-column data of the experiments, MDAM cost must
	// scale with the leading range, not the table size.
	e := newTestEnv(t, 8009)
	cost := func(ta int64) int64 {
		e.ctx.Pool.FlushAll()
		e.ctx.Clock.Reset()
		Drain(NewMDAMScan(e.ctx, e.ixAB, mdam.LessThan(record.Int(ta)), mdam.LessThan(record.Int(10))))
		return int64(e.ctx.Clock.Now())
	}
	narrow := cost(100)
	wide := cost(e.n)
	// The wide scan covers 80x the entries. Cold-cache fixed costs (tree
	// descent seeks) put a floor under the narrow scan, but it must still
	// be well below the full-range cost.
	if narrow*2 > wide {
		t.Errorf("narrow MDAM %d vs wide %d: narrow should be much cheaper", narrow, wide)
	}
}
