// Package robustmap is a library for measuring and visualizing the
// robustness of query execution, reproducing "Visualizing the robustness
// of query execution" (Graefe, Kuno, Wiener — CIDR 2009).
//
// A robustness map records the measured execution time of one or more
// fixed query execution plans across a parameter space (typically
// predicate selectivities) and makes degradation visible: where plans
// cross over, where cost curves stop flattening, where optimality regions
// fragment, and how far from optimal a plan gets (the paper observed
// factors up to 101,000).
//
// The package is a facade over the implementation:
//
//   - a deterministic storage engine (buffer pool, B-trees, MVCC, MDAM,
//     bitmap fetch, external sort, intersection joins) whose virtual-time
//     cost model reproduces the paper's three measured systems,
//   - the robustness-map core (sweeps, color bins, landmark detection,
//     optimality-region analysis), and
//   - renderers (ASCII, SVG, PPM).
//
// # Quick start
//
//	study, err := robustmap.NewStudy(robustmap.SmallStudyConfig())
//	if err != nil { ... }
//	art := robustmap.Figure1(study)     // regenerate the paper's Figure 1
//	fmt.Println(art.ASCII)              // terminal robustness map
//	os.WriteFile("fig1.svg", []byte(art.SVG), 0o644)
//
// Or map your own plans through the unified sweep request API: one
// request built from functional options, run under a context:
//
//	sys, _ := robustmap.SystemA(robustmap.DefaultEngineConfig())
//	sw := robustmap.NewSweep(sources,
//	    robustmap.Grid2D(fracs, fracs, ths, ths),
//	    robustmap.WithParallelism(-1),
//	    robustmap.WithAdaptive(robustmap.DefaultAdaptiveConfig()),
//	    robustmap.WithProgress(func(p robustmap.Progress) { ... }))
//	res, err := sw.Run(ctx) // ctx cancellation aborts cleanly
//
// Every concern is an orthogonal option: executors fan measurement cells
// out over worker goroutines without changing a single measured value
// (WithParallelism / WithExecutor), adaptive multi-resolution sweeps
// (WithAdaptive, or StudyConfig.Refine) measure a coarse lattice plus the
// winner boundaries and landmarks, interpolate the constant-region
// interiors, and reproduce the exhaustive winner and landmark maps
// exactly on the paper's study at roughly a third of the measurements,
// and a shared MeasureCache (WithCache, or StudyConfig.CacheSize)
// memoizes cells across sweeps, so repeated studies and refinement passes
// never re-measure a (plan, point) cell. Cancelling the context makes Run
// return ctx.Err() promptly with no partial map and no leaked
// goroutines, and WithProgress observes measured/interpolated/total cell
// counts as the sweep runs.
//
// Beyond the synchronous Run, sweeps also run as submitted jobs behind
// the transport-agnostic Service interface: Submit/Status/Result/
// Cancel/Watch over a serializable JobRequest, implemented in process
// (NewLocalService — bounded worker pool, priority admission, shared
// measurement cache, job TTL) and over JSON REST (NewRemoteService,
// against the cmd/robustmapd daemon), with bit-identical maps either
// way. A Study configured with StudyConfig.Service runs its standard
// sweeps through any Service.
//
// Beyond hand-written plans, a QuerySpec declares what a query asks
// for (table, predicates, projection, order/limit, aggregates) and the
// optimizer enumerates, costs, and picks candidate plans over its
// catalog; query jobs submitted through the Service carry the pick
// scored against the per-point oracle winner as regret and
// non-robustness maps (see EnumerateQueryPlans, RegretMap2D).
//
// See the examples directory for complete programs, README.md for the
// quick start and plan table, and DESIGN.md for the system inventory and
// the legacy-to-options migration table.
package robustmap

import (
	"context"
	"time"

	"robustmap/internal/core"
	"robustmap/internal/engine"
	"robustmap/internal/exec"
	"robustmap/internal/experiments"
	"robustmap/internal/httpapi"
	"robustmap/internal/iomodel"
	"robustmap/internal/optimizer"
	"robustmap/internal/plan"
	"robustmap/internal/service"
	"robustmap/internal/spec"
	"robustmap/internal/vis"
)

// Study orchestration -------------------------------------------------------

// StudyConfig scales a full reproduction study (table size, sweep ranges,
// engine parameters).
type StudyConfig = experiments.StudyConfig

// Study holds the three built systems and the shared plan sweeps.
type Study = experiments.Study

// Artifacts is everything one experiment produces: summary, CSV, ASCII,
// SVG, PPM, and the outcomes of the paper-claim checks.
type Artifacts = experiments.Artifacts

// NewStudy builds the three systems of the paper's study.
func NewStudy(cfg StudyConfig) (*Study, error) { return experiments.NewStudy(cfg) }

// DefaultStudyConfig is the full-scale study configuration.
func DefaultStudyConfig() StudyConfig { return experiments.DefaultStudyConfig() }

// SmallStudyConfig is a reduced configuration suitable for laptops and CI.
func SmallStudyConfig() StudyConfig { return experiments.SmallStudyConfig() }

// ExperimentIDs lists the reproducible paper artifacts
// (fig1 … fig10, sortspill).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact by id.
func RunExperiment(study *Study, id string) (*Artifacts, bool) {
	def, ok := experiments.Lookup(id)
	if !ok {
		return nil, false
	}
	return def.Run(study), true
}

// RunExperimentContext regenerates one paper artifact by id with the
// study's sweeps under ctx: cancelling ctx aborts the sweep in flight and
// returns ctx.Err() with no artifacts. The boolean reports whether the id
// is known.
func RunExperimentContext(ctx context.Context, study *Study, id string) (*Artifacts, bool, error) {
	def, ok := experiments.Lookup(id)
	if !ok {
		return nil, false, nil
	}
	art, err := def.RunContext(ctx, study)
	return art, true, err
}

// Per-figure regenerators, plus the §3.3/§4 extension experiments.
var (
	Figure1        = experiments.Figure1
	Figure2        = experiments.Figure2
	Figure3        = experiments.Figure3
	Figure4        = experiments.Figure4
	Figure5        = experiments.Figure5
	Figure6        = experiments.Figure6
	Figure7        = experiments.Figure7
	Figure8        = experiments.Figure8
	Figure9        = experiments.Figure9
	Figure10       = experiments.Figure10
	SortSpill      = experiments.SortSpill
	JoinSweep      = experiments.JoinSweep
	AggSweep       = experiments.AggSweep
	WorstMap       = experiments.WorstMap
	SystemsCompare = experiments.SystemsCompare
	ParallelSweep  = experiments.ParallelSweep
	Regions        = experiments.Regions
	ScoreboardExp  = experiments.ScoreboardExperiment
	MemSweep       = experiments.MemSweep
	// RegretExp runs the embedded paper query through the optimizer and
	// renders the regret and non-robustness maps (the optimizer's
	// estimated-cost pick scored against the measured oracle winner).
	RegretExp = experiments.RegretExperiment
	// AdaptiveExperiment contrasts the adaptive multi-resolution sweep
	// with the exhaustive sweep on the full 13-plan study and renders the
	// winner map with the refinement-mesh overlay.
	AdaptiveExperiment = experiments.AdaptiveSweepExperiment
)

// Engine --------------------------------------------------------------------

// EngineConfig parameterizes one simulated database system.
type EngineConfig = engine.Config

// System is one built system: loaded table, indexes, and a deterministic
// cost model. Run measures a fixed plan at a query point.
type System = engine.System

// Result is one measured plan execution (virtual time, cost accounts,
// device and buffer-pool statistics).
type Result = engine.Result

// Session owns the per-run mutable state of one measurement stream over a
// System (clock, device, buffer pool, catalog). Systems are immutable
// after build, so any number of Sessions may measure concurrently; a
// Session itself is confined to one goroutine at a time.
type Session = engine.Session

// DefaultEngineConfig returns the experiment defaults (2^17 rows, 256-page
// buffer pool, 16 MiB operator memory, 2009-era disk profile).
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// SystemA builds the paper's System A: heap table with single-column
// non-clustered indexes, improved and traditional fetches, merge and hash
// index intersection.
func SystemA(cfg EngineConfig) (*System, error) { return engine.SystemA(cfg) }

// SystemB builds System B: MVCC on base rows only, so no index is covering
// and every plan fetches through a sorted RID bitmap.
func SystemB(cfg EngineConfig) (*System, error) { return engine.SystemB(cfg) }

// SystemC builds System C: covering two-column indexes driven by MDAM.
func SystemC(cfg EngineConfig) (*System, error) { return engine.SystemC(cfg) }

// DiskIOParams returns the default disk cost profile (4 ms seek, 8 KiB
// pages at ~100 MB/s, 64-page prefetch).
func DiskIOParams() iomodel.Params { return iomodel.DefaultParams() }

// FlashIOParams returns a flash-like profile for ablations.
func FlashIOParams() iomodel.Params { return iomodel.FlashParams() }

// Plans ---------------------------------------------------------------------

// Plan is a fixed physical query execution plan (the paper's hints made
// explicit).
type Plan = plan.Plan

// Query is a point in the parameter space: thresholds of the predicates
// a < TA and b < TB (TB < 0 for single-predicate queries).
type Query = plan.Query

// SystemAPlans returns System A's seven two-predicate plans.
func SystemAPlans() []Plan { return plan.SystemAPlans() }

// SystemBPlans returns System B's four bitmap-fetch plans.
func SystemBPlans() []Plan { return plan.SystemBPlans() }

// SystemCPlans returns System C's two MDAM plans.
func SystemCPlans() []Plan { return plan.SystemCPlans() }

// AllPlans returns all thirteen distinct plans of the study.
func AllPlans() []Plan { return plan.AllPlans() }

// Figure1Plans returns the three single-predicate plans of Figure 1.
func Figure1Plans() []Plan { return plan.Figure1Plans() }

// Figure2Plans returns Figure 2's advanced selection plan set.
func Figure2Plans() []Plan { return plan.Figure2Plans() }

// Robustness maps -----------------------------------------------------------

// Measurement is one observed plan execution (time and result size).
type Measurement = core.Measurement

// PlanSource is a named measurable plan for sweeps.
type PlanSource = core.PlanSource

// Map1D is a one-dimensional robustness map.
type Map1D = core.Map1D

// Map2D is a two-dimensional robustness map.
type Map2D = core.Map2D

// Landmark is a detected cost-curve irregularity (§3.1 of the paper).
type Landmark = core.Landmark

// GridLandmark is a landmark located on a slice of a 2-D map (see
// Map2D.LandmarkGrid).
type GridLandmark = core.GridLandmark

// LandmarkConfig tunes landmark detection tolerances and significance
// floors.
type LandmarkConfig = core.LandmarkConfig

// Tolerance defines when two execution times are practically equivalent
// (§3.4).
type Tolerance = core.Tolerance

// RegionStats describes an optimality region's size, fragmentation, and
// irregularity.
type RegionStats = core.RegionStats

// RobustnessSummary condenses a relative map into headline numbers.
type RobustnessSummary = core.RobustnessSummary

// The unified sweep request API ---------------------------------------------

// Sweep is one configured sweep request: build it with NewSweep from
// functional options, run it with Run(ctx). Cancelling the context makes
// Run return ctx.Err() promptly with no partial map and no leaked
// goroutines.
type Sweep = core.Sweep

// SweepOption configures a Sweep (grid, executor, cache, adaptivity,
// progress, tolerance); options compose orthogonally.
type SweepOption = core.SweepOption

// SweepResult carries a run's maps: Map1D/Mesh1D for Grid1D sweeps,
// Map2D/Mesh2D for Grid2D sweeps (meshes only when adaptive).
type SweepResult = core.SweepResult

// Progress is a snapshot of a running sweep: measured, interpolated, and
// total cell counts, with Done marking the final report.
type Progress = core.Progress

// ProgressFunc observes sweep progress; see WithProgress.
type ProgressFunc = core.ProgressFunc

// NewSweep builds a sweep request over plan sources: exactly one grid
// option plus any orthogonal options.
func NewSweep(plans []PlanSource, opts ...SweepOption) *Sweep {
	return core.NewSweep(plans, opts...)
}

// Sweep request options; see the core package for full contracts.
var (
	// Grid1D sweeps one predicate over fractions/thresholds.
	Grid1D = core.Grid1D
	// Grid2D sweeps the two-predicate (ta, tb) grid.
	Grid2D = core.Grid2D
	// WithExecutor schedules cells on the given executor.
	WithExecutor = core.WithExecutor
	// WithParallelism is WithExecutor(NewExecutor(n)).
	WithParallelism = core.WithParallelism
	// WithCache memoizes measurements in a MeasureCache.
	WithCache = core.WithCache
	// WithCacheScope names the system behind the sources for cache keys.
	WithCacheScope = core.WithCacheScope
	// WithAdaptive switches to the adaptive multi-resolution sweeper.
	WithAdaptive = core.WithAdaptive
	// WithTolerance overrides the adaptive interpolation error bound with
	// a §3.4 practical-equivalence tolerance.
	WithTolerance = core.WithTolerance
	// WithProgress reports throttled Progress snapshots to the callback.
	WithProgress = core.WithProgress
	// WithProgressInterval tunes the progress throttle (0 = every cell).
	WithProgressInterval = core.WithProgressInterval
)

// SweepExecutor schedules a sweep's (plan, point) measurement cells;
// serial and parallel implementations produce identical maps.
type SweepExecutor = core.SweepExecutor

// ContextExecutor is a SweepExecutor that additionally supports
// cooperative cancellation; both built-in executors implement it.
type ContextExecutor = core.ContextExecutor

// SerialExecutor measures cells one at a time — the default.
type SerialExecutor = core.SerialExecutor

// ParallelExecutor fans cells out over a worker pool, claiming work from a
// shared counter so slow cells never strand idle workers.
type ParallelExecutor = core.ParallelExecutor

// NewExecutor maps a parallelism degree to an executor: 0 or 1 serial,
// n > 1 that many workers, negative all CPUs.
func NewExecutor(parallelism int) SweepExecutor { return core.NewExecutor(parallelism) }

// Adaptive multi-resolution sweeps ------------------------------------------

// AdaptiveConfig tunes the adaptive sweeper: coarse-pass depth, guard
// band, interpolation tolerances, contender net, landmark detector, and
// the optional exact result-size oracle.
type AdaptiveConfig = core.AdaptiveConfig

// Mesh1D records which cells of an adaptive 1-D sweep were measured
// versus interpolated.
type Mesh1D = core.Mesh1D

// Mesh2D records which cells of an adaptive 2-D sweep were measured
// versus interpolated, with per-phase cell counts.
type Mesh2D = core.Mesh2D

// DefaultAdaptiveConfig returns the adaptive-sweep tuning used by the
// study (about 37% of the exhaustive cells on the 13-plan 2-D study).
var DefaultAdaptiveConfig = core.DefaultAdaptiveConfig

// MeasureCache memoizes measurements across sweeps, keyed by
// (system scope, plan, point), with LRU eviction and concurrent-safe
// access. Wrap plan sources with (*MeasureCache).Wrap.
type MeasureCache = core.MeasureCache

// CacheStats is a snapshot of a MeasureCache's hit/miss/eviction counters.
type CacheStats = core.CacheStats

// NewMeasureCache creates a measurement cache holding at most capacity
// entries (capacity <= 0 means unbounded).
var NewMeasureCache = core.NewMeasureCache

// MapLandmarkConfig returns the landmark tolerances used for whole-map
// landmark analysis (and by adaptive sweeps' landmark stabilization).
var MapLandmarkConfig = core.MapLandmarkConfig

// FindLandmarks detects non-monotonic cost, non-flattening growth, and
// discontinuities on a 1-D cost curve.
var FindLandmarks = core.FindLandmarks

// DefaultLandmarkConfig returns detection tolerances suited to
// deterministic measurements.
var DefaultLandmarkConfig = core.DefaultLandmarkConfig

// ComputeOptimality builds the per-point optimal-plan-set map (Figure 10).
var ComputeOptimality = core.ComputeOptimality

// Scoreboard ranks plans by composite robustness score — the §4 benchmark.
var Scoreboard = core.Scoreboard

// CompareScoreboards flags plans whose robustness score regressed — the
// daily-regression alarm of §4.
var CompareScoreboards = core.CompareScoreboards

// PlanScore is one plan's robustness record on the scoreboard.
type PlanScore = core.PlanScore

// AnalyzeRegion computes area, components, and irregularity of an
// optimality region.
var AnalyzeRegion = core.AnalyzeRegion

// SummarizeRelative condenses a quotient grid.
var SummarizeRelative = core.SummarizeRelative

// PlanSourceFor adapts a built system and plan into a sweepable source.
// The source measures through the system's session pool, so it is safe for
// parallel sweep executors.
func PlanSourceFor(sys *System, p Plan) PlanSource {
	return PlanSource{
		ID: p.ID,
		Measure: func(ta, tb int64) Measurement {
			r := sys.RunShared(p, Query{TA: ta, TB: tb})
			return Measurement{Time: r.Time, Rows: r.Rows}
		},
	}
}

// The job service API ---------------------------------------------------------
//
// A Service turns sweeps from blocking function calls into submitted
// jobs: Submit returns a JobID immediately, Status/Watch observe the
// job, Result fetches the maps, Cancel aborts. The interface is
// transport-agnostic — NewLocalService schedules jobs in process on a
// bounded worker pool, NewRemoteService talks to a robustmapd daemon
// over JSON REST — so the same code serves both, and determinism makes
// the maps bit-identical either way. Sweep.Run remains as the one-job
// synchronous path; RunJob is its service-shaped equivalent.

// Service is the transport-agnostic job API over robustness-map sweeps.
type Service = service.Service

// JobRequest declares one sweep job: plan ids, table size, the standard
// selectivity axis, grid shape, parallelism, adaptivity, and admission
// priority. It serializes to JSON, so the same request means the same
// job locally and over HTTP.
type JobRequest = service.Request

// JobResult carries a succeeded job's maps (Map1D/Mesh1D or
// Map2D/Mesh2D, exactly as core.SweepResult would).
type JobResult = service.Result

// JobID identifies one submitted job within a service.
type JobID = service.JobID

// JobState is one point of the job lifecycle:
// queued → running → succeeded | failed | cancelled.
type JobState = service.JobState

// The job states. Succeeded, Failed, and Cancelled are terminal.
const (
	JobQueued    = service.JobQueued
	JobRunning   = service.JobRunning
	JobSucceeded = service.JobSucceeded
	JobFailed    = service.JobFailed
	JobCancelled = service.JobCancelled
)

// JobStatus is a point-in-time snapshot of one job: state, echoed
// request, latest progress, error text, and lifecycle stamps.
type JobStatus = service.JobStatus

// JobEvent is one observation on a Watch stream.
type JobEvent = service.Event

// LocalService is the in-process Service: a bounded worker pool over a
// FIFO-within-priority admission queue, per-job contexts, TTL job GC,
// and one measurement cache shared across jobs.
type LocalService = service.Local

// LocalServiceConfig parameterizes NewLocalService.
type LocalServiceConfig = service.LocalConfig

// The service error vocabulary; errors.Is works identically against a
// local service and across HTTP.
var (
	ErrInvalidJobRequest = service.ErrInvalidRequest
	ErrUnknownJob        = service.ErrUnknownJob
	ErrJobNotDone        = service.ErrJobNotDone
	ErrJobCancelled      = service.ErrJobCancelled
	ErrJobFailed         = service.ErrJobFailed
	ErrServiceDraining   = service.ErrDraining
	ErrJobQueueFull      = service.ErrQueueFull
	ErrTenantOverQuota   = service.ErrTenantQuota
	ErrWorkloadNotFound  = service.ErrSpecNotFound
)

// NewLocalService starts an in-process job service; its workers are
// ready when it returns. Release it with Close.
func NewLocalService(cfg LocalServiceConfig) *LocalService { return service.NewLocal(cfg) }

// NewRemoteService returns a Service backed by the robustmapd daemon at
// baseURL (e.g. "http://127.0.0.1:8421") — the same API as
// NewLocalService, over JSON REST with SSE progress streams.
func NewRemoteService(baseURL string) Service { return httpapi.NewClient(baseURL) }

// WaitJob blocks until the job reaches a terminal state, forwarding
// progress to onProgress (may be nil), and returns its result. The job
// keeps running if ctx is cancelled first; see RunJob for tied
// lifetimes.
func WaitJob(ctx context.Context, svc Service, id JobID, onProgress ProgressFunc) (*JobResult, error) {
	return service.Wait(ctx, svc, id, onProgress)
}

// RunJob is the one-call synchronous form over any Service: submit,
// stream progress, wait, fetch. Cancelling ctx cancels the job itself.
func RunJob(ctx context.Context, svc Service, req JobRequest, onProgress ProgressFunc) (*JobResult, error) {
	return service.Run(ctx, svc, req, onProgress)
}

// Declarative workload specs --------------------------------------------------
//
// A WorkloadSpec is a JSON-serializable scenario: a catalog (table,
// value distributions, indexes), plans as operator trees over the
// execution operators, and sweep axes. Specs travel inside JobRequest,
// so any scenario — including ones the paper never drew — sweeps
// identically in process, through a Service, or against a remote
// daemon, without recompiling anything. The paper's own 13-plan study
// is itself one embedded spec (PaperWorkload) compiled through the same
// registry.

// WorkloadSpec is one declarative, sweepable scenario.
type WorkloadSpec = spec.WorkloadSpec

// CatalogSpec declares a workload's dataset: table, row count, value
// distributions, and index definitions (incl. multi-column).
type CatalogSpec = spec.CatalogSpec

// PlanSpec is one fixed physical plan as an operator tree.
type PlanSpec = spec.PlanSpec

// PlanNode is one operator of a plan tree; see the spec package for the
// operator vocabulary.
type PlanNode = spec.PlanNode

// SystemSpec declares one engine configuration of a workload: index
// set, versioning, and plans.
type SystemSpec = spec.SystemSpec

// LoadWorkload reads and validates a workload spec file.
func LoadWorkload(path string) (*WorkloadSpec, error) { return spec.LoadFile(path) }

// ParseWorkload decodes and validates a workload spec from JSON bytes.
func ParseWorkload(data []byte) (*WorkloadSpec, error) { return spec.Parse(data) }

// PaperWorkload returns the paper's full study (catalog, 13 plans plus
// the Figure 1/2 extras, standard sweep) as a workload spec — the
// natural starting point for custom workload files.
func PaperWorkload() *WorkloadSpec { return plan.PaperWorkload() }

// SweepWorkload runs a workload spec's sweep through a Service and
// returns its maps. A nil svc runs it on an ephemeral in-process
// service. Cancelling ctx cancels the job itself. The request uses the
// workload's own sweep section (plans, axis, grid shape); build a
// JobRequest with the Workload field instead for per-call overrides.
func SweepWorkload(ctx context.Context, svc Service, ws *WorkloadSpec, onProgress ProgressFunc) (*JobResult, error) {
	if svc == nil {
		local := service.NewLocal(service.LocalConfig{Workers: 1})
		defer func() {
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			defer cancel()
			_ = local.Close(cctx)
		}()
		svc = local
	}
	return service.Run(ctx, svc, JobRequest{Workload: ws}, onProgress)
}

// Logical queries and the optimizer -------------------------------------------
//
// A QuerySpec is the logical counterpart of a PlanSpec: it declares
// what the query asks for, and the optimizer enumerates candidate
// operator trees over the query's catalog (scan, index fetches,
// RID intersections, key-filter scans, MDAM, covering joins; sort
// elision and TopN pushdown as wrappers), costs them with the same
// simclock charge vocabulary the engine measures in, and picks per
// sweep point. A JobRequest carries a Query the same way it carries a
// Workload — exactly one of Plans, Workload, or Query — and the job's
// Result then includes the candidate list plus regret and
// non-robustness maps scoring the pick against the oracle winner.

// QuerySpec declares a logical query: catalog, table, interval
// predicates, projection, order/limit, aggregates, and sweep axes.
type QuerySpec = spec.QuerySpec

// PlanCandidate is one optimizer-enumerated plan: the generated
// PlanSpec plus the cost-model shape behind its estimates.
type PlanCandidate = optimizer.Candidate

// CostModel estimates candidate costs in simclock units; it shares the
// charge vocabulary (seek, transfer, CPU per row/compare/hash) with the
// engine, so estimated and measured cost are directly comparable.
type CostModel = optimizer.Model

// CostEstimate is one explained candidate: id, description, estimated
// cost, eligibility at the point, and whether it was the pick.
type CostEstimate = optimizer.CostEstimate

// CandidateInfo is the result-carried summary of one candidate.
type CandidateInfo = service.CandidateInfo

// RegretMap1D overlays the optimizer's per-threshold picks on a
// measured 1-D map: regret quotients against the oracle winner and
// non-robustness flags.
type RegretMap1D = core.RegretMap1D

// RegretMap2D is the 2-D regret overlay; see RegretMap1D.
type RegretMap2D = core.RegretMap2D

// DefaultRegretThreshold is the regret factor above which a cell is
// flagged non-robust.
const DefaultRegretThreshold = core.DefaultRegretThreshold

// LoadQuery reads and validates a query spec file.
func LoadQuery(path string) (*QuerySpec, error) { return spec.LoadQueryFile(path) }

// ParseQuery decodes and validates a query spec from JSON bytes.
func ParseQuery(data []byte) (*QuerySpec, error) { return spec.ParseQuery(data) }

// PaperQuery returns the embedded paper workload as a logical query:
// the two-predicate selection the study's 13 hand-written plans answer,
// ready for the optimizer.
func PaperQuery() *QuerySpec { return optimizer.PaperQuery() }

// EnumerateQueryPlans enumerates the optimizer's candidate plans for a
// query — deterministically: the same query and catalog produce a
// byte-identical candidate list.
func EnumerateQueryPlans(q *QuerySpec) ([]PlanCandidate, error) { return optimizer.Enumerate(q) }

// NewCostModel builds the cost model for a query over the given table
// cardinality (rows <= 0 uses the query catalog's row count).
func NewCostModel(q *QuerySpec, rows int64) CostModel { return optimizer.NewModel(q, rows) }

// ExplainQuery costs every candidate at one point (ta, tb; tb < 0 for
// single-predicate queries) and marks the pick — what `robustmap
// -query q.json -explain` prints.
func ExplainQuery(m CostModel, cands []PlanCandidate, ta, tb int64) []CostEstimate {
	return m.Explain(cands, ta, tb)
}

// SweepQuery plans and measures a query spec through a Service and
// returns its maps with the optimizer overlay (Candidates plus
// Regret1D/Regret2D). A nil svc runs it on an ephemeral in-process
// service. Cancelling ctx cancels the job itself.
func SweepQuery(ctx context.Context, svc Service, q *QuerySpec, onProgress ProgressFunc) (*JobResult, error) {
	if svc == nil {
		local := service.NewLocal(service.LocalConfig{Workers: 1})
		defer func() {
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			defer cancel()
			_ = local.Close(cctx)
		}()
		svc = local
	}
	return service.Run(ctx, svc, JobRequest{Query: q}, onProgress)
}

// Rendering -----------------------------------------------------------------

// HeatMapASCII renders a binned grid for terminals.
var HeatMapASCII = vis.HeatMapASCII

// HeatMapSVG renders a binned grid as SVG with a legend.
var HeatMapSVG = vis.HeatMapSVG

// HeatMapPPM renders a binned grid as a PPM bitmap.
var HeatMapPPM = vis.HeatMapPPM

// LineChartASCII renders 1-D series on log-log axes for terminals.
var LineChartASCII = vis.LineChartASCII

// LineChartSVG renders 1-D series on log-log axes as SVG.
var LineChartSVG = vis.LineChartSVG

// Execution internals exposed for advanced use ------------------------------

// SpillPolicy selects how the external sort degrades past its memory
// budget: gracefully (spill only the overflow) or degenerately (spill the
// whole input) — the §4 experiment.
type SpillPolicy = exec.SpillPolicy

// Spill policies.
const (
	PolicyGraceful   = exec.PolicyGraceful
	PolicyDegenerate = exec.PolicyDegenerate
)
