package robustmap

// TestPublicAPISurface guards the facade: the exported surface of
// package robustmap is rendered deterministically from source and
// compared byte-for-byte against the committed baseline in
// testdata/api/robustmap.txt. Any change — addition, removal, or
// signature edit — fails until the baseline is regenerated with
//
//	go test -run TestPublicAPISurface -update-api .
//
// so API changes are always a deliberate, reviewable diff. CI runs
// this test in place of a revision-pair apidiff: the baseline file is
// the contract remote clients (scoreboards, regression harnesses, the
// daemon's API consumers) build against.

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api/robustmap.txt from the current source")

const apiBaselinePath = "testdata/api/robustmap.txt"

func TestPublicAPISurface(t *testing.T) {
	got := apiSurface(t)
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiBaselinePath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s", apiBaselinePath)
		return
	}
	want, err := os.ReadFile(apiBaselinePath)
	if err != nil {
		t.Fatalf("no committed API baseline: %v (run with -update-api to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface differs from %s.\n"+
			"If the change is deliberate, regenerate with:\n"+
			"\tgo test -run TestPublicAPISurface -update-api .\n%s",
			apiBaselinePath, surfaceDiff(string(want), got))
	}
}

// apiSurface renders every exported top-level declaration of the
// package in this directory: funcs and methods without bodies, and
// const/var/type specs one per entry, each comment-stripped and
// gofmt-printed, sorted for stability.
func apiSurface(t *testing.T) string {
	t.Helper()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	var entries []string
	for _, name := range files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, decl := range f.Decls {
			entries = append(entries, renderDecl(t, fset, decl)...)
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n") + "\n"
}

func renderDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d.Recv) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{printNode(t, fset, &fn)}
	case *ast.GenDecl:
		var out []string
		kw := d.Tok.String() // const, var, or type
		for _, s := range d.Specs {
			switch sp := s.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				cp := *sp
				cp.Doc, cp.Comment = nil, nil
				out = append(out, kw+" "+printNode(t, fset, &cp))
			case *ast.ValueSpec:
				if !anyExported(sp.Names) {
					continue
				}
				cp := *sp
				cp.Doc, cp.Comment = nil, nil
				out = append(out, kw+" "+printNode(t, fset, &cp))
			}
		}
		return out
	}
	return nil
}

func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true // plain function
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

func printNode(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var b strings.Builder
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&b, fset, node); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// surfaceDiff reports the added and removed entries between two
// rendered surfaces — a set diff, enough to see what changed without a
// real diff tool.
func surfaceDiff(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	return b.String()
}
