module robustmap

go 1.24
